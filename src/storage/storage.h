#ifndef MULTILOG_STORAGE_STORAGE_H_
#define MULTILOG_STORAGE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace multilog::storage {

/// What Open recovered from disk: the snapshot image plus the WAL tail
/// the engine must replay over it. The storage layer is deliberately
/// text-level - it knows framing, checksums, and sequence numbers, not
/// MultiLog semantics - so applying `records` to the parsed database is
/// the engine's job and the dependency arrow stays common <- storage <-
/// multilog.
struct RecoveredState {
  /// Canonical source of the database at snapshot time.
  std::string snapshot_source;
  /// WAL records with seqno > the snapshot's, in append order.
  std::vector<WalRecord> records;
  /// OK, or kDataLoss describing a torn/corrupt WAL tail that recovery
  /// truncated (the expected signature of a crash mid-append). The
  /// store is fully usable either way; the caller decides whether to
  /// log, alert, or refuse.
  Status data_loss;
};

/// The canonical data directory for shard `shard_index` of a sharded
/// deployment rooted at `base`: "<base>/shard-<index>". One naming rule
/// shared by the demo scripts, the tests, and operators, so a fleet's
/// on-disk layout is self-describing.
std::string ShardDataDir(const std::string& base, size_t shard_index);

/// A durable home for one MultiLog database: `<dir>/snapshot.mls` (the
/// latest compacted image) plus `<dir>/wal.log` (mutations since).
///
/// Lifecycle: Open() recovers, the engine replays `recovered()`, then
/// every committed mutation calls Append* (write-ahead: the engine
/// validates and logs *before* applying in memory), and Checkpoint()
/// periodically folds the WAL into a fresh snapshot. Not thread-safe:
/// the engine serializes all writers behind its database lock.
class Storage {
 public:
  /// Opens (creating if necessary) the store in `dir`. On first open -
  /// no snapshot present - `initial_source` seeds snapshot seqno 0. On
  /// later opens `initial_source` is ignored: disk wins. A torn WAL
  /// tail is truncated and reported via RecoveredState::data_loss; a
  /// corrupt snapshot is kDataLoss and fails Open (there is nothing
  /// safe to serve).
  static Result<Storage> Open(const std::string& dir,
                              std::string_view initial_source);

  Storage(Storage&&) = default;
  Storage& operator=(Storage&&) = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  const RecoveredState& recovered() const { return recovered_; }

  /// Next unused mutation sequence number (snapshot + replayed WAL).
  uint64_t next_seqno() const { return next_seqno_; }

  /// Seqno the on-disk snapshot covers (0 until the first checkpoint).
  uint64_t snapshot_seqno() const { return snapshot_seqno_; }

  /// Logs one mutation durably (fdatasync before returning) and
  /// returns its sequence number.
  Result<uint64_t> AppendAssert(const std::string& level,
                                const std::string& fact);
  Result<uint64_t> AppendRetract(const std::string& level,
                                 const std::string& fact);

  /// Logs a mutation shipped from a primary, keeping the primary's
  /// seqno instead of allocating a local one - replicas must agree with
  /// the primary on seqnos or catch-up arithmetic breaks. The seqno
  /// must not revisit the past (>= next_seqno()); gaps are legal (the
  /// primary's rejected writes never reach the log... they never
  /// allocate seqnos either, but a snapshot-then-tail handoff can skip
  /// ahead).
  Status AppendReplicated(const WalRecord& record);

  /// Replaces the on-disk state wholesale with a shipped snapshot:
  /// writes `source` as the snapshot at `seqno` and resets the WAL.
  /// Used by a replica whose local state is too stale to catch up by
  /// log replay alone. Same crash ordering as Checkpoint.
  Status InstallSnapshot(uint64_t seqno, std::string_view source);

  /// Folds the log into a new snapshot of `source` (the engine's
  /// current canonical dump) and resets the WAL. Crash-ordered: the new
  /// snapshot is durable before the WAL shrinks, and WAL seqnos make a
  /// replay of any leftover tail idempotent.
  Status Checkpoint(std::string_view source);

  /// Observability for the stats surface and tests.
  uint64_t wal_records() const { return wal_records_; }
  uint64_t wal_bytes() const { return writer_.offset(); }
  uint64_t checkpoints() const { return checkpoints_; }

  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  std::string snapshot_path() const { return dir_ + "/snapshot.mls"; }

 private:
  Storage() = default;

  Result<uint64_t> Append(WalRecordType type, const std::string& level,
                          const std::string& fact);

  std::string dir_;
  RecoveredState recovered_;
  WalWriter writer_;
  uint64_t next_seqno_ = 1;
  uint64_t snapshot_seqno_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace multilog::storage

#endif  // MULTILOG_STORAGE_STORAGE_H_
