#ifndef MULTILOG_STORAGE_SNAPSHOT_H_
#define MULTILOG_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace multilog::storage {

/// # The snapshot format
///
/// A compacted, checksummed image of the whole database at a point in
/// the mutation sequence:
///
///     "MLSSNAP1"            8-byte magic + version
///     u64 seqno             last mutation folded into the body (LE)
///     u32 body_len          (LE)
///     u32 crc32c(body)      (LE)
///     body                  canonical MultiLog source text
///
/// The body is source text rather than a binary image on purpose: it is
/// the same canonical form `Database::ToString()` produces, so a
/// snapshot is loadable by the ordinary parser, diffable by the crash
/// tests ("byte-identical to a clean rebuild" is a string compare), and
/// debuggable with `cat`.
///
/// WriteSnapshot is atomic: the image is written to `<path>.tmp`,
/// fsynced, and renamed over `path`, so a crash mid-checkpoint leaves
/// either the old snapshot or the new one, never a hybrid. Recovery
/// after a crash between the rename and the WAL reset replays WAL
/// records with seqno > the snapshot's seqno and skips the rest.
struct Snapshot {
  uint64_t seqno = 0;
  std::string source;
};

/// Reads and verifies a snapshot. NotFound when `path` does not exist;
/// kDataLoss when the header is malformed, the body is short, or the
/// checksum fails.
Result<Snapshot> ReadSnapshot(const std::string& path);

/// Atomically replaces `path` with a snapshot of `source` at `seqno`.
Status WriteSnapshot(const std::string& path, uint64_t seqno,
                     std::string_view source);

}  // namespace multilog::storage

#endif  // MULTILOG_STORAGE_SNAPSHOT_H_
