#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/trace.h"

namespace multilog::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

/// Guards against a corrupt length prefix directing a gigantic
/// allocation before the CRC gets a chance to reject the record.
constexpr uint32_t kMaxRecordBytes = 16u << 20;  // 16 MiB

Status WriteFully(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal write: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<WalWriter> WalWriter::Open(
    const std::string& path, const std::vector<std::string>& existing_symbols) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("wal open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s =
        Status::Internal("wal fstat '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  WalWriter w;
  w.fd_ = fd;
  w.offset_ = static_cast<uint64_t>(st.st_size);
  for (size_t i = 0; i < existing_symbols.size(); ++i) {
    w.symbol_ids_.emplace(existing_symbols[i], static_cast<uint32_t>(i));
  }
  return w;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      offset_(other.offset_),
      symbol_ids_(std::move(other.symbol_ids_)) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    symbol_ids_ = std::move(other.symbol_ids_);
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::AppendFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload);
  MULTILOG_RETURN_IF_ERROR(WriteFully(fd_, frame.data(), frame.size()));
  offset_ += frame.size();
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record, bool sync) {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  trace::Span span(trace::Stage::kWalAppend);
  auto it = symbol_ids_.find(record.level);
  if (it == symbol_ids_.end()) {
    const uint32_t id = static_cast<uint32_t>(symbol_ids_.size());
    std::string payload;
    payload.push_back(static_cast<char>(WalRecordType::kSymbol));
    PutU32(&payload, id);
    PutU32(&payload, static_cast<uint32_t>(record.level.size()));
    payload.append(record.level);
    MULTILOG_RETURN_IF_ERROR(AppendFrame(payload));
    it = symbol_ids_.emplace(record.level, id).first;
  }
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, record.seqno);
  PutU32(&payload, it->second);
  PutU32(&payload, static_cast<uint32_t>(record.fact.size()));
  payload.append(record.fact);
  MULTILOG_RETURN_IF_ERROR(AppendFrame(payload));
  return sync ? Sync() : Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  trace::Span span(trace::Stage::kFsync);
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(std::string("wal fdatasync: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<WalReplay> ReplayWal(const std::string& path) {
  WalReplay out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // no WAL yet: empty replay
    return Status::Internal("wal open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string data;
  {
    char buf[64 * 1024];
    while (true) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Status::Internal(std::string("wal read: ") +
                                          std::strerror(errno));
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      data.append(buf, static_cast<size_t>(r));
    }
  }
  ::close(fd);

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  size_t pos = 0;
  auto damaged = [&](const std::string& what) {
    out.tail = Status::DataLoss(
        what + " at offset " + std::to_string(out.valid_bytes) + " of '" +
        path + "'; dropping the trailing " +
        std::to_string(data.size() - out.valid_bytes) + " bytes");
  };
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      damaged("torn frame header (" + std::to_string(data.size() - pos) +
              " of 8 bytes)");
      return out;
    }
    const uint32_t len = GetU32(bytes + pos);
    const uint32_t crc = GetU32(bytes + pos + 4);
    if (len > kMaxRecordBytes) {
      damaged("implausible record length " + std::to_string(len));
      return out;
    }
    if (data.size() - pos - 8 < len) {
      damaged("torn record payload (" +
              std::to_string(data.size() - pos - 8) + " of " +
              std::to_string(len) + " bytes)");
      return out;
    }
    const char* payload = data.data() + pos + 8;
    if (Crc32c(payload, len) != crc) {
      damaged("checksum mismatch on a " + std::to_string(len) +
              "-byte record");
      return out;
    }

    // The frame is intact; an undecodable payload past this point is a
    // writer bug, not disk corruption, and fails the whole replay.
    const auto* p = reinterpret_cast<const unsigned char*>(payload);
    auto decode_error = [&]() -> Status {
      return Status::Internal("undecodable WAL record with a valid CRC at "
                              "offset " +
                              std::to_string(pos) + " of '" + path + "'");
    };
    if (len < 1) return decode_error();
    const auto type = static_cast<WalRecordType>(p[0]);
    switch (type) {
      case WalRecordType::kSymbol: {
        if (len < 9) return decode_error();
        const uint32_t id = GetU32(p + 1);
        const uint32_t slen = GetU32(p + 5);
        if (9 + static_cast<uint64_t>(slen) != len) return decode_error();
        if (id != out.symbols.size()) return decode_error();  // dense ids
        out.symbols.emplace_back(payload + 9, slen);
        break;
      }
      case WalRecordType::kAssert:
      case WalRecordType::kRetract: {
        if (len < 17) return decode_error();
        WalRecord rec;
        rec.type = type;
        rec.seqno = GetU64(p + 1);
        const uint32_t sym = GetU32(p + 9);
        const uint32_t flen = GetU32(p + 13);
        if (17 + static_cast<uint64_t>(flen) != len) return decode_error();
        if (sym >= out.symbols.size()) return decode_error();
        rec.level = out.symbols[sym];
        rec.fact.assign(payload + 17, flen);
        out.records.push_back(std::move(rec));
        break;
      }
      default:
        return decode_error();
    }
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  out.tail = Status::OK();
  return out;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal("wal truncate '" + path +
                            "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace multilog::storage
