#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/trace.h"

namespace multilog::storage {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

/// Guards against a corrupt length prefix directing a gigantic
/// allocation before the CRC gets a chance to reject the record.
constexpr uint32_t kMaxRecordBytes = 16u << 20;  // 16 MiB

Status WriteFully(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal write: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<WalWriter> WalWriter::Open(
    const std::string& path, const std::vector<std::string>& existing_symbols) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("wal open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s =
        Status::Internal("wal fstat '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  WalWriter w;
  w.fd_ = fd;
  w.offset_ = static_cast<uint64_t>(st.st_size);
  for (size_t i = 0; i < existing_symbols.size(); ++i) {
    w.symbol_ids_.emplace(existing_symbols[i], static_cast<uint32_t>(i));
  }
  return w;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      offset_(other.offset_),
      symbol_ids_(std::move(other.symbol_ids_)) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    symbol_ids_ = std::move(other.symbol_ids_);
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::AppendFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload);
  MULTILOG_RETURN_IF_ERROR(WriteFully(fd_, frame.data(), frame.size()));
  offset_ += frame.size();
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record, bool sync) {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  trace::Span span(trace::Stage::kWalAppend);
  auto it = symbol_ids_.find(record.level);
  if (it == symbol_ids_.end()) {
    const uint32_t id = static_cast<uint32_t>(symbol_ids_.size());
    std::string payload;
    payload.push_back(static_cast<char>(WalRecordType::kSymbol));
    PutU32(&payload, id);
    PutU32(&payload, static_cast<uint32_t>(record.level.size()));
    payload.append(record.level);
    MULTILOG_RETURN_IF_ERROR(AppendFrame(payload));
    it = symbol_ids_.emplace(record.level, id).first;
  }
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, record.seqno);
  PutU32(&payload, it->second);
  PutU32(&payload, static_cast<uint32_t>(record.fact.size()));
  payload.append(record.fact);
  MULTILOG_RETURN_IF_ERROR(AppendFrame(payload));
  return sync ? Sync() : Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  trace::Span span(trace::Stage::kFsync);
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(std::string("wal fdatasync: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<WalReplay> ReplayWal(const std::string& path) {
  WalReplay out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // no WAL yet: empty replay
    return Status::Internal("wal open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string data;
  {
    char buf[64 * 1024];
    while (true) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Status::Internal(std::string("wal read: ") +
                                          std::strerror(errno));
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      data.append(buf, static_cast<size_t>(r));
    }
  }
  ::close(fd);

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  size_t pos = 0;
  auto damaged = [&](const std::string& what) {
    out.tail = Status::DataLoss(
        what + " at offset " + std::to_string(out.valid_bytes) + " of '" +
        path + "'; dropping the trailing " +
        std::to_string(data.size() - out.valid_bytes) + " bytes");
  };
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      damaged("torn frame header (" + std::to_string(data.size() - pos) +
              " of 8 bytes)");
      return out;
    }
    const uint32_t len = GetU32(bytes + pos);
    const uint32_t crc = GetU32(bytes + pos + 4);
    if (len > kMaxRecordBytes) {
      damaged("implausible record length " + std::to_string(len));
      return out;
    }
    if (data.size() - pos - 8 < len) {
      damaged("torn record payload (" +
              std::to_string(data.size() - pos - 8) + " of " +
              std::to_string(len) + " bytes)");
      return out;
    }
    const char* payload = data.data() + pos + 8;
    if (Crc32c(payload, len) != crc) {
      damaged("checksum mismatch on a " + std::to_string(len) +
              "-byte record");
      return out;
    }

    // The frame is intact; an undecodable payload past this point is a
    // writer bug, not disk corruption, and fails the whole replay.
    const auto* p = reinterpret_cast<const unsigned char*>(payload);
    auto decode_error = [&]() -> Status {
      return Status::Internal("undecodable WAL record with a valid CRC at "
                              "offset " +
                              std::to_string(pos) + " of '" + path + "'");
    };
    if (len < 1) return decode_error();
    const auto type = static_cast<WalRecordType>(p[0]);
    switch (type) {
      case WalRecordType::kSymbol: {
        if (len < 9) return decode_error();
        const uint32_t id = GetU32(p + 1);
        const uint32_t slen = GetU32(p + 5);
        if (9 + static_cast<uint64_t>(slen) != len) return decode_error();
        if (id != out.symbols.size()) return decode_error();  // dense ids
        out.symbols.emplace_back(payload + 9, slen);
        break;
      }
      case WalRecordType::kAssert:
      case WalRecordType::kRetract: {
        if (len < 17) return decode_error();
        WalRecord rec;
        rec.type = type;
        rec.seqno = GetU64(p + 1);
        const uint32_t sym = GetU32(p + 9);
        const uint32_t flen = GetU32(p + 13);
        if (17 + static_cast<uint64_t>(flen) != len) return decode_error();
        if (sym >= out.symbols.size()) return decode_error();
        rec.level = out.symbols[sym];
        rec.fact.assign(payload + 17, flen);
        out.records.push_back(std::move(rec));
        break;
      }
      default:
        return decode_error();
    }
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  out.tail = Status::OK();
  return out;
}

Result<WalReader> WalReader::Open(const std::string& path) {
  WalReader r(path);
  // Lazily opened by Fill: the writer may not have created the file yet
  // and a tailing reader must tolerate that (kEndOfPrefix until then).
  return r;
}

WalReader::WalReader(WalReader&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      offset_(other.offset_),
      file_size_(other.file_size_),
      buffer_(std::move(other.buffer_)),
      symbols_(std::move(other.symbols_)) {
  other.fd_ = -1;
}

WalReader& WalReader::operator=(WalReader&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    offset_ = other.offset_;
    file_size_ = other.file_size_;
    buffer_ = std::move(other.buffer_);
    symbols_ = std::move(other.symbols_);
    other.fd_ = -1;
  }
  return *this;
}

WalReader::~WalReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalReader::Fill(bool* shrank) {
  *shrank = false;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0) {
      if (errno == ENOENT) return Status::OK();  // not created yet
      return Status::Internal("wal open '" + path_ +
                              "': " + std::strerror(errno));
    }
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    return Status::Internal("wal fstat '" + path_ +
                            "': " + std::strerror(errno));
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
  const uint64_t have = offset_ + buffer_.size();
  if (file_size_ < have) {
    // The file is smaller than what we already consumed: a checkpoint
    // truncated it (possibly after regrowing past our offset - that
    // case surfaces as a CRC mismatch and the caller restarts from the
    // snapshot anyway, so only an observed shrink is reported here).
    *shrank = true;
    return Status::OK();
  }
  while (offset_ + buffer_.size() < file_size_) {
    char buf[64 * 1024];
    const uint64_t want = file_size_ - (offset_ + buffer_.size());
    const size_t chunk =
        static_cast<size_t>(want < sizeof(buf) ? want : sizeof(buf));
    const ssize_t r = ::pread(fd_, buf, chunk,
                              static_cast<off_t>(offset_ + buffer_.size()));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal read: ") +
                              std::strerror(errno));
    }
    if (r == 0) break;  // raced a concurrent truncate; next Fill sees it
    buffer_.append(buf, static_cast<size_t>(r));
  }
  return Status::OK();
}

Result<WalReader::Item> WalReader::Next() {
  Item item;
  while (true) {
    bool shrank = false;
    MULTILOG_RETURN_IF_ERROR(Fill(&shrank));
    if (shrank) {
      item.event = Event::kReset;
      return item;
    }

    // Damage classification: any malformed frame that extends to the
    // observed end of file may still be mid-write (the writer appends
    // the whole frame with one write(), but the kernel does not promise
    // a tailing reader sees it atomically) - report kEndOfPrefix and
    // let the caller poll. The same damage with durable bytes *beyond*
    // it can never heal and is kDataLoss.
    const bool at_eof = offset_ + buffer_.size() >= file_size_;
    auto torn_or_lost = [&](const std::string& what,
                            uint64_t frame_end) -> Result<Item> {
      if (!at_eof || frame_end >= offset_ + buffer_.size()) {
        // Either the frame runs to the end of everything durable so far
        // (classic in-flight append), or the buffer itself is short of
        // the observed size (raced a truncate mid-read). Both heal.
        item.event = Event::kEndOfPrefix;
        return item;
      }
      return Status::DataLoss(what + " at offset " + std::to_string(offset_) +
                              " of '" + path_ +
                              "' with intact bytes beyond it");
    };

    if (buffer_.size() < 8) {
      return torn_or_lost("torn frame header", offset_ + 8);
    }
    const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
    const uint32_t len = GetU32(bytes);
    const uint32_t crc = GetU32(bytes + 4);
    if (len > kMaxRecordBytes) {
      // An implausible length cannot be in flight: the writer never
      // emits one, so this is corruption regardless of position.
      return Status::DataLoss("implausible record length " +
                              std::to_string(len) + " at offset " +
                              std::to_string(offset_) + " of '" + path_ + "'");
    }
    const uint64_t frame_end = offset_ + 8 + len;
    if (buffer_.size() - 8 < len) {
      return torn_or_lost("torn record payload", frame_end);
    }
    const char* payload = buffer_.data() + 8;
    if (Crc32c(payload, len) != crc) {
      return torn_or_lost("checksum mismatch", frame_end);
    }

    // The frame is intact; decode it (same rules as ReplayWal - an
    // undecodable payload with a valid CRC is a writer bug).
    const auto* p = reinterpret_cast<const unsigned char*>(payload);
    auto decode_error = [&]() -> Status {
      return Status::Internal("undecodable WAL record with a valid CRC at "
                              "offset " +
                              std::to_string(offset_) + " of '" + path_ + "'");
    };
    if (len < 1) return decode_error();
    const auto type = static_cast<WalRecordType>(p[0]);
    switch (type) {
      case WalRecordType::kSymbol: {
        if (len < 9) return decode_error();
        const uint32_t id = GetU32(p + 1);
        const uint32_t slen = GetU32(p + 5);
        if (9 + static_cast<uint64_t>(slen) != len) return decode_error();
        if (id != symbols_.size()) return decode_error();
        symbols_.emplace_back(payload + 9, slen);
        buffer_.erase(0, 8 + len);
        offset_ += 8 + len;
        continue;  // symbol deltas are internal; keep scanning
      }
      case WalRecordType::kAssert:
      case WalRecordType::kRetract: {
        if (len < 17) return decode_error();
        item.record.type = type;
        item.record.seqno = GetU64(p + 1);
        const uint32_t sym = GetU32(p + 9);
        const uint32_t flen = GetU32(p + 13);
        if (17 + static_cast<uint64_t>(flen) != len) return decode_error();
        if (sym >= symbols_.size()) return decode_error();
        item.record.level = symbols_[sym];
        item.record.fact.assign(payload + 17, flen);
        buffer_.erase(0, 8 + len);
        offset_ += 8 + len;
        item.event = Event::kRecord;
        return item;
      }
      default:
        return decode_error();
    }
  }
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal("wal truncate '" + path +
                            "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace multilog::storage
