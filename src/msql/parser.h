#ifndef MULTILOG_MSQL_PARSER_H_
#define MULTILOG_MSQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "msql/ast.h"

namespace multilog::msql {

/// Parses one MSQL statement - the extended-SQL dialect the paper
/// sketches in Section 3.2:
///
///   user context u
///
///   select starship from mission
///   where destination = 'mars' and objective = 'spying'
///   believed cautiously
///
///   select starship from mission where starship in
///     (select starship from mission where destination = 'mars'
///      believed cautiously)
///   intersect
///   select starship from mission believed firmly
///
/// Keywords are case-insensitive; identifiers are [a-zA-Z_][a-zA-Z0-9_]*;
/// string literals are single-quoted (bare identifiers in value position
/// also read as strings, so `destination = mars` works); integers are
/// 64-bit. A trailing ';' is optional. Belief modes: the long adverbial
/// forms (firmly / optimistically / cautiously), the paper's short forms
/// (fir / opt / cau), or any registered user-defined mode name.
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace multilog::msql

#endif  // MULTILOG_MSQL_PARSER_H_
