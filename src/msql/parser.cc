#include "msql/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/str_util.h"

namespace multilog::msql {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

// kError carries a lexing diagnostic in `text` (e.g. an out-of-range
// integer literal); it matches no expectation, so the parser surfaces
// the message from whichever Error() call trips over it.
enum class TokenKind { kIdent, kString, kInt, kSymbol, kEnd, kError };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (lower-cased), string body, or symbol
  int64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { Advance(); }

  const Token& current() const { return cur_; }

  void Advance() {
    SkipWhitespace();
    if (pos_ >= src_.size()) {
      cur_ = Token{TokenKind::kEnd, "", 0};
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      cur_ = Token{TokenKind::kIdent,
                   ToLower(src_.substr(start, pos_ - start)), 0};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      const std::string digits(src_.substr(start, pos_ - start));
      errno = 0;
      const int64_t number = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        cur_ = Token{TokenKind::kError,
                     "integer literal '" + digits + "' out of range", 0};
        return;
      }
      cur_ = Token{TokenKind::kInt, "", number};
      return;
    }
    if (c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '\'') ++pos_;
      std::string body(src_.substr(start, pos_ - start));
      if (pos_ < src_.size()) ++pos_;  // closing quote
      cur_ = Token{TokenKind::kString, std::move(body), 0};
      return;
    }
    // Multi-char operators first.
    for (std::string_view op : {"<>", "<=", ">=", "!="}) {
      if (src_.substr(pos_, 2) == op) {
        pos_ += 2;
        cur_ = Token{TokenKind::kSymbol, std::string(op), 0};
        return;
      }
    }
    ++pos_;
    cur_ = Token{TokenKind::kSymbol, std::string(1, c), 0};
  }

 private:
  void SkipWhitespace() {
    while (pos_ < src_.size() &&
           (std::isspace(static_cast<unsigned char>(src_[pos_])) ||
            (src_[pos_] == '-' && pos_ + 1 < src_.size() &&
             src_[pos_ + 1] == '-'))) {
      if (src_[pos_] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        ++pos_;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(std::string_view sql) : lex_(sql) {}

  Result<Statement> Parse() {
    Statement stmt;
    if (AtKeyword("user")) {
      lex_.Advance();
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("context"));
      MULTILOG_ASSIGN_OR_RETURN(std::string level, ExpectIdent());
      stmt.kind = Statement::Kind::kUserContext;
      stmt.user_level = std::move(level);
    } else if (AtKeyword("insert")) {
      lex_.Advance();
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("into"));
      auto insert = std::make_unique<InsertStmt>();
      MULTILOG_ASSIGN_OR_RETURN(insert->relation, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("values"));
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("("));
      MULTILOG_ASSIGN_OR_RETURN(mls::Value first, ExpectValue());
      insert->values.push_back(std::move(first));
      while (TrySymbol(",")) {
        MULTILOG_ASSIGN_OR_RETURN(mls::Value next, ExpectValue());
        insert->values.push_back(std::move(next));
      }
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.kind = Statement::Kind::kInsert;
      stmt.insert = std::move(insert);
    } else if (AtKeyword("update")) {
      lex_.Advance();
      auto update = std::make_unique<UpdateStmt>();
      MULTILOG_ASSIGN_OR_RETURN(update->relation, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("set"));
      MULTILOG_ASSIGN_OR_RETURN(update->column, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("="));
      MULTILOG_ASSIGN_OR_RETURN(update->value, ExpectValue());
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("where"));
      MULTILOG_ASSIGN_OR_RETURN(update->key_column, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("="));
      MULTILOG_ASSIGN_OR_RETURN(update->key, ExpectValue());
      stmt.kind = Statement::Kind::kUpdate;
      stmt.update = std::move(update);
    } else if (AtKeyword("delete")) {
      lex_.Advance();
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("from"));
      auto del = std::make_unique<DeleteStmt>();
      MULTILOG_ASSIGN_OR_RETURN(del->relation, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectKeyword("where"));
      MULTILOG_ASSIGN_OR_RETURN(del->key_column, ExpectIdent());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("="));
      MULTILOG_ASSIGN_OR_RETURN(del->key, ExpectValue());
      stmt.kind = Statement::Kind::kDelete;
      stmt.del = std::move(del);
    } else {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> query,
                                ParseQueryExpr());
      stmt.kind = Statement::Kind::kQuery;
      stmt.query = std::move(query);
    }
    TrySymbol(";");
    if (lex_.current().kind != TokenKind::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  Status Error(const std::string& message) const {
    if (lex_.current().kind == TokenKind::kError) {
      return Status::ParseError(lex_.current().text);
    }
    return Status::ParseError(message);
  }

  bool AtKeyword(std::string_view kw) const {
    return lex_.current().kind == TokenKind::kIdent &&
           lex_.current().text == kw;
  }

  bool TryKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      lex_.Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!TryKeyword(kw)) {
      return Error("expected keyword '" + std::string(kw) + "'");
    }
    return Status::OK();
  }

  bool TrySymbol(std::string_view sym) {
    if (lex_.current().kind == TokenKind::kSymbol &&
        lex_.current().text == sym) {
      lex_.Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!TrySymbol(sym)) return Error("expected '" + std::string(sym) + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (lex_.current().kind != TokenKind::kIdent) {
      return Error("expected identifier");
    }
    std::string text = lex_.current().text;
    lex_.Advance();
    return text;
  }

  /// A literal value: 'string', integer, NULL, or a bare identifier read
  /// as a string.
  Result<mls::Value> ExpectValue() {
    const Token& t = lex_.current();
    if (t.kind == TokenKind::kString) {
      mls::Value v = mls::Value::Str(t.text);
      lex_.Advance();
      return v;
    }
    if (t.kind == TokenKind::kInt) {
      mls::Value v = mls::Value::Int(t.number);
      lex_.Advance();
      return v;
    }
    if (t.kind == TokenKind::kIdent) {
      mls::Value v = t.text == "null" ? mls::Value::NullValue()
                                      : mls::Value::Str(t.text);
      lex_.Advance();
      return v;
    }
    return Error("expected a value");
  }

  Result<std::unique_ptr<QueryExpr>> ParseQueryExpr() {
    MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> lhs, ParseLeaf());
    while (true) {
      QueryExpr::Kind kind;
      if (TryKeyword("intersect")) {
        kind = QueryExpr::Kind::kIntersect;
      } else if (TryKeyword("union")) {
        kind = QueryExpr::Kind::kUnion;
      } else if (TryKeyword("except")) {
        kind = QueryExpr::Kind::kExcept;
      } else {
        return lhs;
      }
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> rhs, ParseLeaf());
      auto combined = std::make_unique<QueryExpr>();
      combined->kind = kind;
      combined->lhs = std::move(lhs);
      combined->rhs = std::move(rhs);
      lhs = std::move(combined);
    }
  }

  Result<std::unique_ptr<QueryExpr>> ParseLeaf() {
    if (TrySymbol("(")) {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> inner,
                                ParseQueryExpr());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select,
                              ParseSelect());
    auto leaf = std::make_unique<QueryExpr>();
    leaf->kind = QueryExpr::Kind::kSelect;
    leaf->select = std::move(select);
    return leaf;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    MULTILOG_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto select = std::make_unique<SelectStmt>();

    if (AtKeyword("count")) {
      lex_.Advance();
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("("));
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("*"));
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol(")"));
      select->count_star = true;
    } else if (!TrySymbol("*")) {
      MULTILOG_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
      select->columns.push_back(std::move(first));
      while (TrySymbol(",")) {
        MULTILOG_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
        select->columns.push_back(std::move(next));
      }
    }

    MULTILOG_RETURN_IF_ERROR(ExpectKeyword("from"));
    MULTILOG_ASSIGN_OR_RETURN(select->relation, ExpectIdent());

    if (TryKeyword("where")) {
      MULTILOG_ASSIGN_OR_RETURN(select->where, ParseOr());
    }
    if (TryKeyword("believed")) {
      MULTILOG_ASSIGN_OR_RETURN(select->believed_mode, ExpectIdent());
    }
    return select;
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (TryKeyword("or")) {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      auto combined = std::make_unique<Expr>();
      combined->kind = Expr::Kind::kOr;
      combined->children.push_back(std::move(lhs));
      combined->children.push_back(std::move(rhs));
      lhs = std::move(combined);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (TryKeyword("and")) {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      auto combined = std::make_unique<Expr>();
      combined->kind = Expr::Kind::kAnd;
      combined->children.push_back(std::move(lhs));
      combined->children.push_back(std::move(rhs));
      lhs = std::move(combined);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (TryKeyword("not")) {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      auto negated = std::make_unique<Expr>();
      negated->kind = Expr::Kind::kNot;
      negated->children.push_back(std::move(inner));
      return negated;
    }
    if (TrySymbol("(")) {
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<Operand> ParseOperand() {
    const Token& t = lex_.current();
    Operand op;
    if (t.kind == TokenKind::kIdent) {
      op.kind = Operand::Kind::kColumn;
      op.column = t.text;
      lex_.Advance();
      return op;
    }
    if (t.kind == TokenKind::kString) {
      op.kind = Operand::Kind::kLiteral;
      op.literal = mls::Value::Str(t.text);
      lex_.Advance();
      return op;
    }
    if (t.kind == TokenKind::kInt) {
      op.kind = Operand::Kind::kLiteral;
      op.literal = mls::Value::Int(t.number);
      lex_.Advance();
      return op;
    }
    return Error("expected column, string, or integer");
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    MULTILOG_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());

    if (TryKeyword("in")) {
      if (lhs.kind != Operand::Kind::kColumn) {
        return Error("IN requires a column on the left");
      }
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol("("));
      MULTILOG_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> sub,
                                ParseQueryExpr());
      MULTILOG_RETURN_IF_ERROR(ExpectSymbol(")"));
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kInSubquery;
      expr->lhs = std::move(lhs);
      expr->subquery = std::move(sub);
      return expr;
    }

    CompareOp op;
    if (TrySymbol("=")) {
      op = CompareOp::kEq;
    } else if (TrySymbol("<>") || TrySymbol("!=")) {
      op = CompareOp::kNe;
    } else if (TrySymbol("<=")) {
      op = CompareOp::kLe;
    } else if (TrySymbol(">=")) {
      op = CompareOp::kGe;
    } else if (TrySymbol("<")) {
      op = CompareOp::kLt;
    } else if (TrySymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator or IN");
    }
    MULTILOG_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());

    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kCompare;
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  Lexer lex_;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  return Parser(sql).Parse();
}

}  // namespace multilog::msql
