#ifndef MULTILOG_MSQL_AST_H_
#define MULTILOG_MSQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "mls/value.h"

namespace multilog::msql {

/// Comparison operators of the WHERE clause.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CompareOpToString(CompareOp op);

struct Expr;
struct QueryExpr;

/// A scalar operand: a column reference or a literal.
struct Operand {
  enum class Kind { kColumn, kLiteral };
  Kind kind = Kind::kLiteral;
  std::string column;  // kColumn
  mls::Value literal;  // kLiteral
};

/// A boolean WHERE expression.
struct Expr {
  enum class Kind { kCompare, kAnd, kOr, kNot, kInSubquery };
  Kind kind = Kind::kCompare;

  // kCompare
  CompareOp op = CompareOp::kEq;
  Operand lhs;
  Operand rhs;

  // kAnd / kOr (two operands) and kNot (one operand, in children[0])
  std::vector<std::unique_ptr<Expr>> children;

  // kInSubquery: `lhs IN (subquery)`; the subquery must produce a single
  // column.
  std::unique_ptr<QueryExpr> subquery;
};

/// A single SELECT:
///   SELECT cols|* FROM relation [WHERE expr] [BELIEVED mode]
/// Without BELIEVED the relation is read through the Jajodia-Sandhu view
/// at the session level; with it, through the belief function beta.
struct SelectStmt {
  std::vector<std::string> columns;  // empty means *
  bool count_star = false;           // SELECT COUNT(*) ...
  std::string relation;
  std::unique_ptr<Expr> where;   // may be null
  std::string believed_mode;     // empty when absent
};

/// SELECT ... INTERSECT/UNION/EXCEPT SELECT ... (left-associative).
struct QueryExpr {
  enum class Kind { kSelect, kUnion, kIntersect, kExcept };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;  // kSelect
  std::unique_ptr<QueryExpr> lhs;      // set ops
  std::unique_ptr<QueryExpr> rhs;
};

/// INSERT INTO rel VALUES (v1, ..., vn) - executed as a polyinstantiating
/// insert at the session level (every cell classified at the subject's
/// clearance, per the star-property).
struct InsertStmt {
  std::string relation;
  std::vector<mls::Value> values;
};

/// UPDATE rel SET col = value WHERE key = k - the Jajodia-Sandhu update:
/// in place when the subject owns the cell at its level, otherwise
/// polyinstantiating. The WHERE clause must be an equality on the
/// apparent key.
struct UpdateStmt {
  std::string relation;
  std::string column;
  mls::Value value;
  std::string key_column;
  mls::Value key;
};

/// DELETE FROM rel WHERE key = k - removes the versions living at the
/// session level.
struct DeleteStmt {
  std::string relation;
  std::string key_column;
  mls::Value key;
};

/// A full statement: `USER CONTEXT level`, a query expression, or DML.
struct Statement {
  enum class Kind { kUserContext, kQuery, kInsert, kUpdate, kDelete };
  Kind kind = Kind::kQuery;
  std::string user_level;              // kUserContext
  std::unique_ptr<QueryExpr> query;    // kQuery
  std::unique_ptr<InsertStmt> insert;  // kInsert
  std::unique_ptr<UpdateStmt> update;  // kUpdate
  std::unique_ptr<DeleteStmt> del;     // kDelete
};

}  // namespace multilog::msql

#endif  // MULTILOG_MSQL_AST_H_
