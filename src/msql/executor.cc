#include "msql/executor.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "msql/parser.h"

namespace multilog::msql {

namespace {

/// Case-insensitive value comparison: -1 / 0 / +1, or no value when the
/// kinds are incomparable (null vs non-null compares unequal but
/// unordered).
std::optional<int> CompareValues(const mls::Value& a, const mls::Value& b) {
  if (a.is_null() || b.is_null()) {
    return (a.is_null() && b.is_null()) ? std::optional<int>(0)
                                        : std::nullopt;
  }
  if (a.is_int() && b.is_int()) {
    if (a.int_value() < b.int_value()) return -1;
    if (a.int_value() > b.int_value()) return 1;
    return 0;
  }
  if (a.is_string() && b.is_string()) {
    std::string la = ToLower(a.str());
    std::string lb = ToLower(b.str());
    if (la < lb) return -1;
    if (la > lb) return 1;
    return 0;
  }
  return std::nullopt;
}

bool EvalCompare(CompareOp op, std::optional<int> cmp) {
  if (!cmp.has_value()) {
    // Incomparable kinds: only != holds.
    return op == CompareOp::kNe;
  }
  switch (op) {
    case CompareOp::kEq:
      return *cmp == 0;
    case CompareOp::kNe:
      return *cmp != 0;
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kGt:
      return *cmp > 0;
    case CompareOp::kGe:
      return *cmp >= 0;
  }
  return false;
}

}  // namespace

std::string ResultSet::ToString() const {
  TablePrinter printer(columns);
  for (const auto& row : rows) printer.AddRow(row);
  return printer.ToString();
}

Status Session::RegisterRelation(const std::string& name,
                                 const mls::Relation* relation) {
  std::string key = ToLower(name);
  if (!catalog_.emplace(std::move(key), relation).second) {
    return Status::InvalidArgument("relation '" + name +
                                   "' already registered");
  }
  return Status::OK();
}

Status Session::RegisterMutableRelation(const std::string& name,
                                        mls::Relation* relation) {
  MULTILOG_RETURN_IF_ERROR(RegisterRelation(name, relation));
  mutable_catalog_.emplace(ToLower(name), relation);
  return Status::OK();
}

Result<mls::Relation*> Session::MutableRelation(const std::string& name) {
  auto it = mutable_catalog_.find(ToLower(name));
  if (it == mutable_catalog_.end()) {
    if (catalog_.count(ToLower(name))) {
      return Status::InvalidArgument("relation '" + name +
                                     "' is registered read-only");
    }
    return Status::NotFound("unknown relation '" + name + "'");
  }
  return it->second;
}

Status Session::RequireContext() const {
  if (user_level_.empty()) {
    return Status::InvalidArgument(
        "no user context set; run `user context <level>` first");
  }
  return Status::OK();
}

Status Session::SetUserContext(const std::string& level) {
  if (context_locked_) {
    return Status::SecurityViolation(
        "user context is fixed for this session; reconnect to change "
        "clearance");
  }
  // Validated lazily against each queried relation's lattice (relations
  // may use different lattices); only non-emptiness is checked here.
  if (level.empty()) {
    return Status::InvalidArgument("empty user context level");
  }
  user_level_ = ToLower(level);
  return Status::OK();
}

Result<ResultSet> Session::Execute(std::string_view sql) {
  MULTILOG_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<ResultSet> Session::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kUserContext: {
      MULTILOG_RETURN_IF_ERROR(SetUserContext(stmt.user_level));
      ResultSet ack;
      ack.columns = {"context"};
      ack.rows = {{user_level_}};
      return ack;
    }
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case Statement::Kind::kDelete:
      return ExecuteDelete(*stmt.del);
    case Statement::Kind::kQuery:
      break;
  }
  return ExecuteQuery(*stmt.query);
}

Result<ResultSet> Session::ExecuteInsert(const InsertStmt& insert) {
  MULTILOG_RETURN_IF_ERROR(RequireContext());
  MULTILOG_ASSIGN_OR_RETURN(mls::Relation * rel,
                            MutableRelation(insert.relation));
  MULTILOG_RETURN_IF_ERROR(rel->InsertAt(user_level_, insert.values));
  ResultSet ack;
  ack.columns = {"inserted"};
  ack.rows = {{"1"}};
  return ack;
}

Result<ResultSet> Session::ExecuteUpdate(const UpdateStmt& update) {
  MULTILOG_RETURN_IF_ERROR(RequireContext());
  MULTILOG_ASSIGN_OR_RETURN(mls::Relation * rel,
                            MutableRelation(update.relation));
  if (rel->scheme().key_arity() != 1) {
    return Status::InvalidArgument(
        "MSQL DML supports single-attribute keys; use the Relation API "
        "for composite keys");
  }
  if (ToLower(rel->scheme().key_attribute()) !=
      ToLower(update.key_column)) {
    return Status::InvalidArgument(
        "UPDATE requires `where <apparent key> = <value>`; the key of '" +
        update.relation + "' is '" + rel->scheme().key_attribute() + "'");
  }
  // Resolve the target column case-insensitively.
  std::string column;
  for (const mls::AttributeDef& a : rel->scheme().attributes()) {
    if (ToLower(a.name) == ToLower(update.column)) column = a.name;
  }
  if (column.empty()) {
    return Status::NotFound("no column '" + update.column +
                            "' in relation '" + update.relation + "'");
  }
  MULTILOG_RETURN_IF_ERROR(
      rel->UpdateAt(user_level_, update.key, column, update.value));
  ResultSet ack;
  ack.columns = {"updated"};
  ack.rows = {{"1"}};
  return ack;
}

Result<ResultSet> Session::ExecuteDelete(const DeleteStmt& del) {
  MULTILOG_RETURN_IF_ERROR(RequireContext());
  MULTILOG_ASSIGN_OR_RETURN(mls::Relation * rel,
                            MutableRelation(del.relation));
  if (rel->scheme().key_arity() != 1) {
    return Status::InvalidArgument(
        "MSQL DML supports single-attribute keys; use the Relation API "
        "for composite keys");
  }
  if (ToLower(rel->scheme().key_attribute()) != ToLower(del.key_column)) {
    return Status::InvalidArgument(
        "DELETE requires `where <apparent key> = <value>`");
  }
  MULTILOG_RETURN_IF_ERROR(rel->DeleteAt(user_level_, del.key));
  ResultSet ack;
  ack.columns = {"deleted"};
  ack.rows = {{"1"}};
  return ack;
}

Result<ResultSet> Session::ExecuteQuery(const QueryExpr& query) {
  if (query.kind == QueryExpr::Kind::kSelect) {
    return ExecuteSelect(*query.select);
  }
  MULTILOG_ASSIGN_OR_RETURN(ResultSet lhs, ExecuteQuery(*query.lhs));
  MULTILOG_ASSIGN_OR_RETURN(ResultSet rhs, ExecuteQuery(*query.rhs));
  if (lhs.columns.size() != rhs.columns.size()) {
    return Status::InvalidArgument(
        "set operation between results of different arity");
  }

  std::set<std::vector<std::string>> right(rhs.rows.begin(), rhs.rows.end());
  ResultSet out;
  out.columns = lhs.columns;
  std::set<std::vector<std::string>> emitted;
  auto emit = [&](const std::vector<std::string>& row) {
    if (emitted.insert(row).second) out.rows.push_back(row);
  };
  switch (query.kind) {
    case QueryExpr::Kind::kUnion:
      for (const auto& row : lhs.rows) emit(row);
      for (const auto& row : rhs.rows) emit(row);
      break;
    case QueryExpr::Kind::kIntersect:
      for (const auto& row : lhs.rows) {
        if (right.count(row)) emit(row);
      }
      break;
    case QueryExpr::Kind::kExcept:
      for (const auto& row : lhs.rows) {
        if (!right.count(row)) emit(row);
      }
      break;
    case QueryExpr::Kind::kSelect:
      break;  // unreachable
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

Result<ResultSet> Session::ExecuteSelect(const SelectStmt& select) {
  if (user_level_.empty()) {
    return Status::InvalidArgument(
        "no user context set; run `user context <level>` first");
  }
  auto it = catalog_.find(ToLower(select.relation));
  if (it == catalog_.end()) {
    return Status::NotFound("unknown relation '" + select.relation + "'");
  }
  const mls::Relation& base = *it->second;

  // Materialize the readable relation: sigma view by default, beta under
  // BELIEVED.
  mls::Relation source(base.scheme(), &base.lat());
  if (select.believed_mode.empty()) {
    MULTILOG_ASSIGN_OR_RETURN(source, base.ViewAt(user_level_));
  } else if (registry_ != nullptr) {
    MULTILOG_ASSIGN_OR_RETURN(
        mls::BeliefOutcome outcome,
        registry_->Believe(base, user_level_, select.believed_mode));
    source = std::move(outcome.relation);
  } else {
    MULTILOG_ASSIGN_OR_RETURN(mls::BeliefMode mode,
                              mls::ParseBeliefMode(select.believed_mode));
    MULTILOG_ASSIGN_OR_RETURN(mls::BeliefOutcome outcome,
                              mls::Believe(base, user_level_, mode));
    source = std::move(outcome.relation);
  }

  // Resolve projection columns.
  const mls::Scheme& scheme = source.scheme();
  std::vector<size_t> projection;
  ResultSet out;
  if (select.columns.empty()) {
    for (size_t i = 0; i < scheme.arity(); ++i) {
      projection.push_back(i);
      out.columns.push_back(ToLower(scheme.attributes()[i].name));
    }
  } else {
    for (const std::string& name : select.columns) {
      bool found = false;
      for (size_t i = 0; i < scheme.arity(); ++i) {
        if (ToLower(scheme.attributes()[i].name) == name) {
          projection.push_back(i);
          out.columns.push_back(name);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("no column '" + name + "' in relation '" +
                                select.relation + "'");
      }
    }
  }

  // Evaluate WHERE per tuple; bare identifiers that are not columns read
  // as string literals (so `destination = mars` works as sketched in the
  // paper).
  auto resolve = [&scheme](const Operand& op,
                           const mls::Tuple& t) -> Result<mls::Value> {
    if (op.kind == Operand::Kind::kLiteral) return op.literal;
    for (size_t i = 0; i < scheme.arity(); ++i) {
      if (ToLower(scheme.attributes()[i].name) == op.column) {
        return t.cells[i].value;
      }
    }
    return mls::Value::Str(op.column);
  };

  std::function<Result<bool>(const Expr&, const mls::Tuple&)> eval =
      [&](const Expr& expr, const mls::Tuple& t) -> Result<bool> {
    switch (expr.kind) {
      case Expr::Kind::kCompare: {
        MULTILOG_ASSIGN_OR_RETURN(mls::Value lhs, resolve(expr.lhs, t));
        MULTILOG_ASSIGN_OR_RETURN(mls::Value rhs, resolve(expr.rhs, t));
        return EvalCompare(expr.op, CompareValues(lhs, rhs));
      }
      case Expr::Kind::kAnd: {
        MULTILOG_ASSIGN_OR_RETURN(bool a, eval(*expr.children[0], t));
        if (!a) return false;
        return eval(*expr.children[1], t);
      }
      case Expr::Kind::kOr: {
        MULTILOG_ASSIGN_OR_RETURN(bool a, eval(*expr.children[0], t));
        if (a) return true;
        return eval(*expr.children[1], t);
      }
      case Expr::Kind::kNot: {
        MULTILOG_ASSIGN_OR_RETURN(bool a, eval(*expr.children[0], t));
        return !a;
      }
      case Expr::Kind::kInSubquery: {
        MULTILOG_ASSIGN_OR_RETURN(mls::Value lhs, resolve(expr.lhs, t));
        MULTILOG_ASSIGN_OR_RETURN(ResultSet sub,
                                  ExecuteQuery(*expr.subquery));
        if (sub.columns.size() != 1) {
          return Status::InvalidArgument(
              "IN subquery must produce exactly one column");
        }
        std::string needle = ToLower(lhs.ToString());
        for (const auto& row : sub.rows) {
          if (ToLower(row[0]) == needle) return true;
        }
        return false;
      }
    }
    return Status::Internal("unreachable expression kind");
  };

  std::set<std::vector<std::string>> emitted;
  size_t matched = 0;
  for (const mls::Tuple& t : source.tuples()) {
    if (select.where != nullptr) {
      MULTILOG_ASSIGN_OR_RETURN(bool keep, eval(*select.where, t));
      if (!keep) continue;
    }
    ++matched;
    if (select.count_star) continue;
    std::vector<std::string> row;
    row.reserve(projection.size());
    for (size_t i : projection) row.push_back(t.cells[i].value.ToString());
    if (emitted.insert(row).second) out.rows.push_back(std::move(row));
  }
  if (select.count_star) {
    out.columns = {"count"};
    out.rows = {{std::to_string(matched)}};
    return out;
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

}  // namespace multilog::msql
