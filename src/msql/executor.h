#ifndef MULTILOG_MSQL_EXECUTOR_H_
#define MULTILOG_MSQL_EXECUTOR_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "mls/belief.h"
#include "mls/relation.h"
#include "msql/ast.h"

namespace multilog::msql {

/// A query result: projected column names and stringified rows,
/// deduplicated (set semantics) and deterministically ordered.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  bool operator==(const ResultSet& other) const {
    return columns == other.columns && rows == other.rows;
  }

  /// Renders as an aligned table (empty result renders the header only).
  std::string ToString() const;
};

/// An MSQL session: a catalog of MLS relations, a user context (the
/// clearance fixed by `user context <level>`), and the belief-mode
/// registry dispatching `believed <mode>`.
///
/// Reads without BELIEVED go through the Jajodia-Sandhu view at the
/// session level (sigma, with subsumption); `believed m` goes through
/// the belief function beta instead - the paper's linguistic instrument
/// for ad hoc belief queries (Section 3.2). String comparisons are
/// case-insensitive, so `destination = mars` matches 'Mars'.
class Session {
 public:
  /// `registry` may be null (built-in modes only). Registered relations
  /// and the registry must outlive the session.
  explicit Session(const mls::BeliefModeRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Adds `relation` under `name` (case-insensitive lookup), read-only:
  /// DML statements against it are rejected.
  Status RegisterRelation(const std::string& name,
                          const mls::Relation* relation);

  /// Adds a writable relation: INSERT/UPDATE/DELETE execute the
  /// polyinstantiating operations at the session level.
  Status RegisterMutableRelation(const std::string& name,
                                 mls::Relation* relation);

  /// Sets the user context level directly (as `user context l` does).
  Status SetUserContext(const std::string& level);
  const std::string& user_context() const { return user_level_; }

  /// Pins the current user context for the session's lifetime: later
  /// `user context` statements (and SetUserContext calls) return
  /// SecurityViolation. The query server calls this after binding a
  /// connection's clearance at HELLO, so a wire client cannot escalate
  /// past the level it authenticated at (no read-up by construction).
  void LockUserContext() { context_locked_ = true; }

  /// Parses and executes one statement. `user context` statements return
  /// an empty ResultSet with a "context" pseudo-column.
  Result<ResultSet> Execute(std::string_view sql);

  /// Executes an already-parsed statement.
  Result<ResultSet> ExecuteStatement(const Statement& stmt);

 private:
  Result<ResultSet> ExecuteQuery(const QueryExpr& query);
  Result<ResultSet> ExecuteSelect(const SelectStmt& select);
  Result<ResultSet> ExecuteInsert(const InsertStmt& insert);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& update);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& del);

  Result<mls::Relation*> MutableRelation(const std::string& name);
  Status RequireContext() const;

  const mls::BeliefModeRegistry* registry_;
  std::map<std::string, const mls::Relation*> catalog_;
  std::map<std::string, mls::Relation*> mutable_catalog_;
  std::string user_level_;
  bool context_locked_ = false;
};

}  // namespace multilog::msql

#endif  // MULTILOG_MSQL_EXECUTOR_H_
