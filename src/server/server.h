#ifndef MULTILOG_SERVER_SERVER_H_
#define MULTILOG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mls/belief.h"
#include "mls/relation.h"
#include "multilog/engine.h"
#include "replication/replicator.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace multilog::server {

/// Everything tunable about a multilogd instance. Defaults are sized
/// for tests and small deployments; the CLI exposes each as a flag.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (tests
  /// read it back via Server::port()).
  uint16_t port = 0;

  /// Size of the shared query worker pool. Queries from all
  /// connections dispatch here, so concurrency across sessions is
  /// min(#connections, num_workers).
  size_t num_workers = 4;

  /// Admission control: connections beyond this are accepted, told
  /// "ok":false with kResourceExhausted, and closed immediately.
  size_t max_connections = 64;

  /// Admission control: QUERY/SQL requests beyond this many in flight
  /// get a structured overload error (the connection stays open).
  size_t max_in_flight = 32;

  /// Largest request frame accepted; larger declared lengths are
  /// rejected without reading the payload and the connection closes
  /// (framing can't be trusted past an oversized header).
  size_t max_request_bytes = 1u << 20;  // 1 MiB

  /// Deadline applied to queries that don't carry their own
  /// `deadline_ms`; 0 means no default deadline.
  int64_t default_deadline_ms = 0;

  /// Execution mode for sessions whose HELLO doesn't pick one.
  ml::ExecMode default_mode = ml::ExecMode::kReduced;

  /// Queries whose server-side wall time reaches this many ms are
  /// written to the slow-query log (level, mode, wall time, dominant
  /// stage, goal). 0 logs every query; -1 disables the log. Enabling it
  /// also makes every query collect a span tree, whether or not the
  /// client asked for one.
  int64_t slow_query_ms = -1;

  /// Destination of the slow-query log; nullptr means stderr. Must
  /// outlive the server. Lines are written under an internal mutex.
  std::ostream* slow_query_log = nullptr;

  /// Reject ASSERT/RETRACT/CHECKPOINT with kReadOnly. Set on replicas
  /// (--replica-of implies it): the replication stream is the only
  /// writer, so a client write would fork the replica's history from
  /// the primary's. Queries, stats, and metrics stay available.
  bool read_only = false;
};

/// A relation exposed to wire clients through the `sql` command.
struct SqlCatalogEntry {
  std::string name;
  const mls::Relation* relation = nullptr;  // must outlive the server
};

/// multilogd: a concurrent MLS query server over one shared Engine.
///
/// ## Session model
///
/// Each accepted connection runs its own reader thread and owns a
/// session. The first request must be HELLO, which binds the session's
/// {clearance level, exec mode} after validating the level against the
/// database's lattice. From then on every query runs at exactly that
/// level - the session level *is* the engine's database level, so
/// read-up is impossible by construction rather than by filtering; and
/// when an MSQL catalog is configured, the per-connection msql::Session
/// has its user context locked at HELLO for the same reason.
///
/// ## Dispatch and limits
///
/// Readers parse and validate frames, then dispatch QUERY/SQL work
/// onto the shared worker pool and block for the result (the protocol
/// is strictly request/response, so a blocked reader costs nothing).
/// Admission control rejects connections over `max_connections` and
/// queries over `max_in_flight`; oversized frames are refused before
/// allocation. Per-query deadlines arm a CancelToken that the engine
/// polls cooperatively; an expired query returns kDeadlineExceeded on
/// the same connection, which remains usable.
///
/// ## Shutdown
///
/// Stop() is graceful: the listener closes first (no new sessions),
/// in-flight queries run to completion, each connection's read side is
/// shut down so its reader unblocks after writing its pending
/// response, and all threads are joined before Stop returns.
class Server {
 public:
  /// `engine` must be non-null and outlive the server. `catalog` lists
  /// relations served to the `sql` command (empty = SQL disabled).
  Server(ml::Engine* engine, ServerOptions options,
         std::vector<SqlCatalogEntry> catalog = {},
         const mls::BeliefModeRegistry* belief_registry = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Returns once the
  /// server is reachable (so tests can connect immediately).
  Status Start();

  /// Graceful shutdown; idempotent. See the class comment.
  void Stop();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  const ServerMetrics& metrics() const { return metrics_; }

  /// On a replica, points the stats/metrics surface at the replication
  /// link (connected flag, primary's next_seqno, lag gauge). The
  /// replicator must outlive the server. Call before Start().
  void SetReplicator(const replication::Replicator* replicator) {
    replicator_ = replicator;
  }

 private:
  struct Connection {
    int fd = -1;
    bool closed = false;  // guarded by conn_mu_; prevents double close
  };

  void AcceptLoop();
  void ServeConnection(size_t conn_index);

  /// One request end to end: parse, validate, dispatch, respond.
  /// Returns false when the connection should close (BYE or framing
  /// damage).
  bool HandleFrame(struct SessionState& session, int fd);

  Json HandleQuery(const struct SessionState& session, const Request& req);
  Json HandleSql(struct SessionState& session, const Request& req);
  /// ASSERT / RETRACT / CHECKPOINT at the session clearance. The engine
  /// serializes the mutation against in-flight queries behind its
  /// database lock; by the time the response is written, the write is
  /// durable (when the engine has storage) and visible to every later
  /// query on every connection.
  Json HandleWrite(const struct SessionState& session, const Request& req);
  /// The STATS payload: server metrics plus the engine's cache/mutation
  /// counters and, when durable, the storage surface.
  Json StatsJson();

  /// The METRICS payload: the full Prometheus text exposition -
  /// ServerMetrics::PrometheusText() plus the in-flight gauge, the
  /// engine and storage counter families, and the per-stage trace
  /// aggregates.
  std::string MetricsText();

  /// Appends one slow-query line (level, mode, wall ms, dominant stage,
  /// goal) to options_.slow_query_log (stderr when unset).
  void LogSlowQuery(const struct SessionState& session, const Request& req,
                    const trace::SpanNode& root);

  ml::Engine* engine_;
  ServerOptions options_;
  std::vector<SqlCatalogEntry> catalog_;
  const mls::BeliefModeRegistry* belief_registry_;
  const replication::Replicator* replicator_ = nullptr;
  ServerMetrics metrics_;
  std::atomic<uint64_t> replication_streams_{0};  // served as the primary

  std::unique_ptr<ThreadPool> pool_;
  std::atomic<size_t> in_flight_{0};
  std::mutex slow_log_mu_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;  // append-only
  std::vector<std::thread> conn_threads_;                 // append-only
};

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_SERVER_H_
