#ifndef MULTILOG_SERVER_SERVER_H_
#define MULTILOG_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mls/belief.h"
#include "mls/relation.h"
#include "multilog/engine.h"
#include "replication/replicator.h"
#include "server/metrics.h"
#include "server/protocol.h"

namespace multilog::server {

/// Everything tunable about a multilogd instance. Defaults are sized
/// for tests and small deployments; the CLI exposes each as a flag.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (tests
  /// read it back via Server::port()).
  uint16_t port = 0;

  /// Size of the shared query worker pool. Queries from all
  /// connections dispatch here, so concurrency across sessions is
  /// min(#in-flight queries, num_workers).
  size_t num_workers = 4;

  /// Admission control: connections beyond this are accepted, told
  /// "ok":false with kResourceExhausted (best-effort, nonblocking),
  /// and closed immediately.
  size_t max_connections = 64;

  /// Admission control: QUERY/SQL/write requests beyond this many in
  /// flight get a structured overload error (the connection stays
  /// open). Parked min_seqno waits do not hold a slot - admission is
  /// charged when a query dispatches to a worker, not while it waits.
  size_t max_in_flight = 32;

  /// Largest request frame accepted; larger declared lengths are
  /// rejected without buffering the payload and the connection closes
  /// (framing can't be trusted past an oversized header).
  size_t max_request_bytes = 1u << 20;  // 1 MiB

  /// Pipelining backpressure: when a session's undelivered response
  /// bytes exceed this, the loop stops reading more requests from it
  /// until the peer drains below half. Bounds per-session memory
  /// against a client that pipelines requests but never reads.
  size_t max_session_write_buffer = 8u << 20;  // 8 MiB

  /// Deadline applied to queries that don't carry their own
  /// `deadline_ms`; 0 means no default deadline.
  int64_t default_deadline_ms = 0;

  /// Execution mode for sessions whose HELLO doesn't pick one.
  ml::ExecMode default_mode = ml::ExecMode::kReduced;

  /// Queries whose server-side wall time reaches this many ms are
  /// written to the slow-query log (level, mode, wall time, dominant
  /// stage, goal). 0 logs every query; -1 disables the log. Enabling it
  /// also makes every query collect a span tree, whether or not the
  /// client asked for one.
  int64_t slow_query_ms = -1;

  /// Destination of the slow-query log; nullptr means stderr. Must
  /// outlive the server. Lines are written under an internal mutex.
  std::ostream* slow_query_log = nullptr;

  /// Reject ASSERT/RETRACT/CHECKPOINT with kReadOnly. Set on replicas
  /// (--replica-of implies it): the replication stream is the only
  /// writer, so a client write would fork the replica's history from
  /// the primary's. Queries, stats, and metrics stay available.
  bool read_only = false;

  /// How long Stop() waits for in-flight requests to complete and
  /// their responses to flush before force-closing sessions.
  int64_t drain_deadline_ms = 5000;
};

/// A relation exposed to wire clients through the `sql` command.
struct SqlCatalogEntry {
  std::string name;
  const mls::Relation* relation = nullptr;  // must outlive the server
};

/// multilogd: a concurrent MLS query server over one shared Engine.
///
/// ## Architecture (DESIGN.md §18)
///
/// One epoll-driven I/O thread owns every connection: nonblocking
/// reads feed a per-session FrameDecoder, complete requests are parsed
/// on the loop, and cheap commands (ping, hello, bye, shardmap) are
/// answered inline. QUERY/SQL/writes (and stats/metrics, whose
/// handlers take engine locks) are dispatched to the shared worker
/// pool; workers serialize the response and post it to a completion
/// queue that an eventfd wakes the loop to drain, so the loop never
/// blocks on the engine and a worker never touches a socket. Sessions
/// live in an fd-keyed map and are freed the moment their connection
/// closes - connection churn leaves nothing behind (the seed
/// thread-per-connection server leaked a Connection plus a joinable
/// thread per accepted session until Stop()).
///
/// ## Session model
///
/// The first request must be HELLO, which binds the session's
/// {clearance level, exec mode} after validating the level against the
/// database's lattice. From then on every query runs at exactly that
/// level - the session level *is* the engine's database level, so
/// read-up is impossible by construction rather than by filtering; and
/// when an MSQL catalog is configured, the per-connection msql::Session
/// has its user context locked at HELLO for the same reason.
///
/// ## Pipelining
///
/// A session may tag requests with an integer `id` and keep several in
/// flight; responses carry the tag and may complete out of order.
/// HELLO/BYE/`replicate` are ordered: the loop defers them until the
/// session's in-flight count drains to zero. `min_seqno` queries park
/// on the loop (no worker, no in-flight slot) until the applied seqno
/// catches up or `wait_ms` expires.
///
/// ## Limits and failure
///
/// Admission control rejects connections over `max_connections`
/// (best-effort nonblocking error frame - a stalled peer cannot delay
/// the accept path) and dispatches over `max_in_flight`; oversized
/// frames are refused before buffering. A failed response write counts
/// `response_write_errors` and closes the session.
///
/// ## Shutdown
///
/// Stop() is graceful: the listener closes first, parked queries are
/// failed with kDeadlineExceeded, in-flight work completes and its
/// responses flush (bounded by `drain_deadline_ms`), sessions close,
/// and the loop, replication stream threads, and pool are joined
/// before Stop returns.
class Server {
 public:
  /// `engine` must be non-null and outlive the server. `catalog` lists
  /// relations served to the `sql` command (empty = SQL disabled).
  Server(ml::Engine* engine, ServerOptions options,
         std::vector<SqlCatalogEntry> catalog = {},
         const mls::BeliefModeRegistry* belief_registry = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop. Returns once the
  /// server is reachable (so tests can connect immediately).
  Status Start();

  /// Graceful shutdown; idempotent. See the class comment.
  void Stop();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  const ServerMetrics& metrics() const { return metrics_; }

  /// On a replica, points the stats/metrics surface at the replication
  /// link (connected flag, primary's next_seqno, lag gauge). The
  /// replicator must outlive the server. Call before Start().
  void SetReplicator(const replication::Replicator* replicator) {
    replicator_ = replicator;
  }

 private:
  /// The per-connection MSQL session, shared between the loop (which
  /// creates it at HELLO) and whichever worker runs an `sql` request.
  /// msql::Session is stateful, so concurrent pipelined statements
  /// serialize on `mu`; shared_ptr ownership lets a worker finish a
  /// statement after the loop already freed the session.
  struct SqlHandle;

  /// A query parked on the loop until applied_seqno reaches its
  /// min_seqno floor (or give_up passes). Holds no worker and no
  /// in-flight slot while parked.
  struct ParkedQuery;

  /// Everything one connection owns; lives in sessions_ keyed by fd
  /// and is destroyed on close - that destruction IS the churn fix.
  struct Session;

  /// What a worker posts back to the loop: the serialized response for
  /// session (fd, gen). `gen` guards against fd reuse - a completion
  /// for a dead session is dropped.
  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    std::string payload;
  };

  /// A self-contained unit of worker-side work: owns copies of
  /// everything it needs, so it is immune to its session dying
  /// mid-execution.
  struct Task;

  /// A replication stream: the fd handed off from a session, served by
  /// a dedicated thread (an open-ended stream must not occupy a pool
  /// worker or the loop). Reaped when done; joined at Stop.
  struct Stream {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // --- event loop (all private state below sessions_ is loop-owned) --
  void LoopMain();
  void WakeLoop();
  /// First reaction to stopping_: close the listener, expire parked
  /// queries, stop reading, and start the bounded drain.
  void BeginDrain();
  void HandleAccept();
  /// Routes one epoll event (writable first, then readable) to the
  /// session owning `fd`, if it still exists.
  void HandleEvent(int fd, uint32_t events);
  void HandleReadable(Session* s);
  /// Decodes and processes every complete frame buffered in s, until a
  /// deferral/backpressure/close stops it. Returns false when the
  /// session was closed (the pointer is dead in that case - the same
  /// contract every bool-returning session method here follows).
  bool ProcessFrames(Session* s);
  bool ProcessPayload(Session* s, std::string payload);
  /// Serializes a response (echoing `id` when present), frames it, and
  /// delivers it through DeliverFrame.
  bool QueueResponse(Session* s, Json response,
                     const std::optional<int64_t>& id);
  /// Appends one already-framed response to s->wbuf, flushes what the
  /// socket takes, and applies write-buffer backpressure.
  bool DeliverFrame(Session* s, std::string frame);
  /// Flushes as much of s->wbuf as the socket takes without blocking.
  /// A hard send error counts response_write_errors and closes.
  bool FlushSession(Session* s);
  /// Lifts read backpressure once the write buffer drained below half
  /// the cap, and processes frames buffered while paused.
  bool ResumeReading(Session* s);
  void UpdateEpoll(Session* s);
  void CloseSession(Session* s);
  /// Snapshots session state into a Task and submits it to the pool.
  /// `admitted` tasks hold an in-flight slot they release on exit.
  void DispatchTask(Session* s, Request req,
                    trace::Collector::Clock::time_point t_read,
                    trace::Collector::Clock::time_point t_parsed,
                    bool admitted);
  void RunTask(const std::shared_ptr<Task>& task,
               trace::Collector::Clock::time_point t_submit);
  void PostCompletion(int fd, uint64_t gen, std::string frame);
  void DrainCompletions();
  /// Re-checks parked min_seqno queries against the applied seqno and
  /// their give-up deadlines.
  void CheckParked();
  /// Runs the deferred ordered command (BYE / replicate) - the caller
  /// has verified the session is fully drained and flushed.
  bool RunDeferred(Session* s);
  /// Hands the fd off to a dedicated replication stream thread and
  /// frees the session state (the connection stays open as a stream).
  void StartReplication(Session* s, uint64_t from_seqno);
  void ReapStreamsLocked();
  /// Runs a ready deferred command, then closes the session if nothing
  /// keeps it alive (peer gone / closing / draining, nothing in
  /// flight, nothing buffered). Returns false when it closed.
  bool MaybeClose(Session* s);

  // --- worker-side handlers (copies in Task keep them session-safe) --
  Json HandleQuery(const Task& task);
  Json HandleSql(const Task& task);
  /// ASSERT / RETRACT / CHECKPOINT at the session clearance. The engine
  /// serializes the mutation against in-flight queries behind its
  /// database lock; by the time the response is written, the write is
  /// durable (when the engine has storage) and visible to every later
  /// query on every connection.
  Json HandleWrite(const Task& task);
  /// The STATS payload: server metrics plus the engine's cache/mutation
  /// counters and, when durable, the storage surface.
  Json StatsJson();
  /// The METRICS payload: the full Prometheus text exposition -
  /// ServerMetrics::PrometheusText() plus the in-flight gauge, the
  /// engine and storage counter families, and the per-stage trace
  /// aggregates.
  std::string MetricsText();
  /// Appends one slow-query line (level, mode, wall ms, dominant stage,
  /// goal) to options_.slow_query_log (stderr when unset).
  void LogSlowQuery(const Task& task, const trace::SpanNode& root);

  ml::Engine* engine_;
  ServerOptions options_;
  std::vector<SqlCatalogEntry> catalog_;
  const mls::BeliefModeRegistry* belief_registry_;
  const replication::Replicator* replicator_ = nullptr;
  ServerMetrics metrics_;
  std::atomic<uint64_t> replication_streams_{0};  // served as the primary

  std::unique_ptr<ThreadPool> pool_;
  std::atomic<size_t> in_flight_{0};
  std::mutex slow_log_mu_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers wake the loop for completions
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread loop_thread_;

  /// Loop-owned session table; erasing an entry frees the session.
  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_gen_ = 1;
  /// Sessions with parked min_seqno queries (loop-owned).
  std::unordered_set<int> parked_fds_;
  /// Set once the loop observes stopping_ and begins its drain.
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::mutex comp_mu_;
  std::vector<Completion> completions_;  // workers push, loop drains

  std::mutex streams_mu_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_SERVER_H_
