#ifndef MULTILOG_SERVER_JSON_H_
#define MULTILOG_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace multilog::server {

/// A minimal JSON value for the wire protocol: null, bool, int64,
/// double, string, array, object. Self-contained (the container image
/// ships no JSON library) and deliberately strict:
///
///  - Parse accepts exactly one value plus trailing whitespace;
///  - strings must be valid UTF-8 (overlong encodings, stray
///    surrogates, and bare continuation bytes are ParseError - the
///    robustness corpus feeds the server raw garbage);
///  - nesting depth is capped (stack safety against "[[[[...");
///  - objects preserve insertion order, so serialization is
///    deterministic and responses are byte-stable across runs.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Int(int64_t i) {
    Json j;
    j.kind_ = Kind::kInt;
    j.int_ = i;
    return j;
  }
  static Json Double(double d) {
    Json j;
    j.kind_ = Kind::kDouble;
    j.double_ = d;
    return j;
  }
  static Json Str(std::string s) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors require the matching kind (asserted in debug builds);
  /// use the kind predicates first on untrusted values.
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  /// Numeric value as double (works for both kInt and kDouble).
  double number_value() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array_items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& object_items() const {
    return members_;
  }

  /// Appends to an array.
  void Push(Json value) { items_.push_back(std::move(value)); }

  /// Sets a key on an object (replaces an existing key in place).
  void Set(const std::string& key, Json value);

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Typed lookup helpers for request parsing: value of the member when
  /// present and of the right kind, `fallback` when absent entirely,
  /// error Status via the out-param pattern is avoided - callers that
  /// must distinguish wrong-type use Find directly.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Compact, deterministic serialization (no added whitespace).
  std::string Serialize() const;

  /// Strict parse; see the class comment for what is rejected.
  static Result<Json> Parse(std::string_view text);

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// True when `bytes` is well-formed UTF-8 (rejects overlong encodings,
/// surrogate code points, and values above U+10FFFF). Exposed for the
/// framing layer, which validates payloads before parsing.
bool IsValidUtf8(std::string_view bytes);

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_JSON_H_
