#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>

namespace multilog::server {

Status StatusFromWire(const Json& response) {
  const std::string code = response.GetString("code", "Internal");
  std::string msg = response.GetString("error", "unknown server error");
  if (code == "ParseError") return Status::ParseError(std::move(msg));
  if (code == "InvalidProgram") return Status::InvalidProgram(std::move(msg));
  if (code == "NotFound") return Status::NotFound(std::move(msg));
  if (code == "InvalidArgument") {
    return Status::InvalidArgument(std::move(msg));
  }
  if (code == "SecurityViolation") {
    return Status::SecurityViolation(std::move(msg));
  }
  if (code == "IntegrityViolation") {
    return Status::IntegrityViolation(std::move(msg));
  }
  if (code == "ResourceExhausted") {
    return Status::ResourceExhausted(std::move(msg));
  }
  if (code == "DeadlineExceeded") {
    return Status::DeadlineExceeded(std::move(msg));
  }
  if (code == "DataLoss") return Status::DataLoss(std::move(msg));
  if (code == "ReadOnly") return Status::ReadOnly(std::move(msg));
  if (code == "Unavailable") return Status::Unavailable(std::move(msg));
  return Status::Internal(std::move(msg));
}

Result<Client> Client::Connect(uint16_t port) {
  return Connect("127.0.0.1", port);
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "invalid host '" + host +
        "' (expected an IPv4 address or 'localhost')");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Internal("connect to " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Frames are small; Nagle would hold a pipelined burst hostage to
  // the peer's delayed ACK.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Result<Client> Client::ConnectWithRetry(const std::string& host,
                                        uint16_t port, int attempts,
                                        int64_t backoff_ms) {
  if (attempts < 1) attempts = 1;
  Result<Client> last = Status::Internal("no connect attempts made");
  int64_t delay = backoff_ms;
  for (int i = 0; i < attempts; ++i) {
    last = Connect(host, port);
    // An invalid host never becomes valid; only connection refusals
    // (daemon still binding) are worth waiting out.
    if (last.ok() || last.status().IsInvalidArgument()) return last;
    if (i + 1 < attempts && delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      delay = std::min<int64_t>(delay * 2, 2000);
    }
  }
  return last;
}

Result<Client> Client::ConnectAnyWithRetry(
    const std::vector<Endpoint>& endpoints, int attempts,
    int64_t backoff_ms) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("no endpoints to connect to");
  }
  if (attempts < 1) attempts = 1;
  Result<Client> last = Status::Internal("no connect attempts made");
  int64_t delay = backoff_ms;
  for (int round = 0; round < attempts; ++round) {
    for (const Endpoint& ep : endpoints) {
      last = Connect(ep.host, ep.port);
      if (last.ok()) return last;
      // An invalid host in the *list* is a configuration error worth
      // failing fast on, same as ConnectWithRetry's single-host rule.
      if (last.status().IsInvalidArgument()) return last;
    }
    if (round + 1 < attempts && delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      delay = std::min<int64_t>(delay * 2, 2000);
    }
  }
  return last;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendQuery(int64_t id, const std::string& goal,
                         int64_t deadline_ms, std::string_view mode) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("query"));
  req.Set("goal", Json::Str(goal));
  req.Set("id", Json::Int(id));
  if (deadline_ms >= 0) req.Set("deadline_ms", Json::Int(deadline_ms));
  if (!mode.empty()) req.Set("mode", Json::Str(std::string(mode)));
  return SendRaw(req.Serialize());
}

Status Client::SendAssert(int64_t id, const std::string& fact) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("assert"));
  req.Set("fact", Json::Str(fact));
  req.Set("id", Json::Int(id));
  return SendRaw(req.Serialize());
}

Result<Json> Client::ReadResponse() {
  MULTILOG_ASSIGN_OR_RETURN(std::string payload, ReadRaw());
  return Json::Parse(payload);
}

Status Client::SendRaw(std::string_view payload) {
  return WriteFrame(fd_, payload);
}

Result<std::string> Client::ReadRaw() {
  MULTILOG_ASSIGN_OR_RETURN(std::optional<std::string> frame,
                            ReadFrame(fd_, kAbsoluteMaxFrameBytes));
  if (!frame.has_value()) {
    return Status::Internal("server closed the connection");
  }
  return *std::move(frame);
}

Result<Json> Client::RoundTrip(const Json& request) {
  MULTILOG_RETURN_IF_ERROR(SendRaw(request.Serialize()));
  MULTILOG_ASSIGN_OR_RETURN(std::string payload, ReadRaw());
  return Json::Parse(payload);
}

Result<Json> Client::Call(const Json& request) {
  MULTILOG_ASSIGN_OR_RETURN(Json response, RoundTrip(request));
  if (!response.GetBool("ok", false)) return StatusFromWire(response);
  return response;
}

Result<Json> Client::Hello(const std::string& level, std::string_view mode) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("hello"));
  req.Set("level", Json::Str(level));
  if (!mode.empty()) req.Set("mode", Json::Str(std::string(mode)));
  return Call(req);
}

Result<Json> Client::Query(const std::string& goal, int64_t deadline_ms,
                           std::string_view mode, bool proofs, bool trace,
                           uint64_t min_seqno, int64_t wait_ms) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("query"));
  req.Set("goal", Json::Str(goal));
  if (deadline_ms >= 0) req.Set("deadline_ms", Json::Int(deadline_ms));
  if (!mode.empty()) req.Set("mode", Json::Str(std::string(mode)));
  if (proofs) req.Set("proofs", Json::Bool(true));
  if (trace) req.Set("trace", Json::Bool(true));
  if (min_seqno > 0) {
    req.Set("min_seqno", Json::Int(static_cast<int64_t>(min_seqno)));
    if (wait_ms > 0) req.Set("wait_ms", Json::Int(wait_ms));
  }
  return Call(req);
}

Result<Json> Client::Sql(const std::string& sql) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("sql"));
  req.Set("sql", Json::Str(sql));
  return Call(req);
}

Result<Json> Client::Assert(const std::string& fact) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("assert"));
  req.Set("fact", Json::Str(fact));
  return Call(req);
}

Result<Json> Client::Retract(const std::string& fact) {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("retract"));
  req.Set("fact", Json::Str(fact));
  return Call(req);
}

Result<Json> Client::Checkpoint() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("checkpoint"));
  return Call(req);
}

Result<Json> Client::Stats() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("stats"));
  return Call(req);
}

Result<std::string> Client::Metrics() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("metrics"));
  MULTILOG_ASSIGN_OR_RETURN(Json response, Call(req));
  const Json* body = response.Find("body");
  if (body == nullptr || !body->is_string()) {
    return Status::Internal("metrics response is missing a string 'body'");
  }
  return body->string_value();
}

Result<Json> Client::Ping() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("ping"));
  return Call(req);
}

Result<Json> Client::ShardMap() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("shardmap"));
  return Call(req);
}

Status Client::Bye() {
  Json req = Json::Object();
  req.Set("cmd", Json::Str("bye"));
  return Call(req).status();
}

namespace {

/// Strips comments ('%' or '#' to end of line) and surrounding blanks.
std::string StripBatchLine(std::string line) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '%' || line[i] == '#') {
      line.resize(i);
      break;
    }
  }
  const size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

}  // namespace

BatchResult RunBatch(Client& client, std::istream& input, bool keep_going,
                     std::ostream* echo) {
  BatchResult result;
  const auto start = std::chrono::steady_clock::now();
  size_t lineno = 0;
  std::string line;
  while (std::getline(input, line)) {
    ++lineno;
    const std::string stripped = StripBatchLine(line);
    if (stripped.empty()) continue;
    const size_t space = stripped.find_first_of(" \t");
    const std::string verb = stripped.substr(0, space);
    const std::string rest = space == std::string::npos
                                 ? ""
                                 : StripBatchLine(stripped.substr(space));

    Result<Json> response = Status::Internal("unreached");
    if (verb == "assert" && !rest.empty()) {
      response = client.Assert(rest);
    } else if (verb == "retract" && !rest.empty()) {
      response = client.Retract(rest);
    } else if (verb == "checkpoint" && rest.empty()) {
      response = client.Checkpoint();
    } else if (verb == "query" && !rest.empty()) {
      response = client.Query(rest);
    } else {
      response = Status::InvalidArgument(
          "expected 'assert FACT', 'retract FACT', 'checkpoint', or "
          "'query GOAL'");
    }
    if (!response.ok()) {
      result.failures.push_back({lineno, response.status()});
      if (keep_going) continue;
      return result;
    }
    if (echo != nullptr) {
      *echo << lineno << ": " << response->Serialize() << "\n";
    }
    ++result.applied;
    if (verb == "assert" || verb == "retract") {
      ++result.writes;
      auto count = [&](const char* field) -> size_t {
        const Json* levels = response->Find(field);
        return levels != nullptr && levels->is_array()
                   ? levels->array_items().size()
                   : 0;
      };
      result.levels_maintained += count("maintained_levels");
      result.levels_invalidated += count("invalidated_levels");
    }
  }
  result.wall_ms =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      1000.0;
  return result;
}

}  // namespace multilog::server
