#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace multilog::server {

namespace {

/// Reads exactly `n` bytes, retrying on EINTR. Returns the number of
/// bytes actually read (< n only at EOF or on a socket error).
size_t ReadFully(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  return got;
}

}  // namespace

Result<std::optional<std::string>> ReadFrame(int fd, size_t max_bytes) {
  // Header: decimal digits then '\n', read byte-wise (headers are tiny
  // and this keeps the reader stateless between frames).
  std::string header;
  while (true) {
    char c;
    const size_t r = ReadFully(fd, &c, 1);
    if (r == 0) {
      if (header.empty()) return std::optional<std::string>();  // clean EOF
      return Status::ParseError("connection closed inside a frame header");
    }
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      return Status::ParseError(
          "malformed frame header: expected a decimal length");
    }
    header.push_back(c);
    if (header.size() > 20) {
      return Status::ParseError("malformed frame header: length too long");
    }
  }
  if (header.empty()) {
    return Status::ParseError("malformed frame header: empty length");
  }
  errno = 0;
  const unsigned long long declared = std::strtoull(header.c_str(), nullptr,
                                                    10);
  if (errno == ERANGE || declared > kAbsoluteMaxFrameBytes ||
      declared > max_bytes) {
    return Status::ResourceExhausted(
        "frame of " + header + " bytes exceeds the request size limit of " +
        std::to_string(max_bytes) + " bytes");
  }
  std::string payload(static_cast<size_t>(declared), '\0');
  const size_t got = ReadFully(fd, payload.data(), payload.size());
  if (got != payload.size()) {
    return Status::ParseError("connection closed inside a frame payload (" +
                              std::to_string(got) + " of " + header +
                              " bytes)");
  }
  return std::optional<std::string>(std::move(payload));
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (failed_) return;  // damaged streams buffer nothing further
  // Compact before growing: pos_ only ever advances, so without this a
  // long-lived pipelined session would accumulate every frame it ever
  // received.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (failed_) return fail_status_;
  auto fail = [this](Status s) -> Status {
    failed_ = true;
    fail_status_ = s;
    return fail_status_;
  };
  if (!in_payload_) {
    // Header: decimal digits then '\n'. Same acceptance rules (and
    // error wording) as the blocking ReadFrame.
    while (pos_ < buf_.size()) {
      const char c = buf_[pos_];
      ++pos_;
      if (c == '\n') {
        if (header_.empty()) {
          return fail(
              Status::ParseError("malformed frame header: empty length"));
        }
        errno = 0;
        const unsigned long long declared =
            std::strtoull(header_.c_str(), nullptr, 10);
        if (errno == ERANGE || declared > kAbsoluteMaxFrameBytes ||
            declared > max_bytes_) {
          return fail(Status::ResourceExhausted(
              "frame of " + header_ + " bytes exceeds the request size "
              "limit of " + std::to_string(max_bytes_) + " bytes"));
        }
        payload_len_ = static_cast<size_t>(declared);
        in_payload_ = true;
        break;
      }
      if (c < '0' || c > '9') {
        return fail(Status::ParseError(
            "malformed frame header: expected a decimal length"));
      }
      header_.push_back(c);
      if (header_.size() > 20) {
        return fail(
            Status::ParseError("malformed frame header: length too long"));
      }
    }
    if (!in_payload_) return std::optional<std::string>();  // need bytes
  }
  if (buf_.size() - pos_ < payload_len_) {
    return std::optional<std::string>();  // need bytes
  }
  std::string payload = buf_.substr(pos_, payload_len_);
  pos_ += payload_len_;
  header_.clear();
  in_payload_ = false;
  payload_len_ = 0;
  return std::optional<std::string>(std::move(payload));
}

Status FrameDecoder::OnEof() const {
  if (failed_) return fail_status_;
  if (in_payload_) {
    return Status::ParseError(
        "connection closed inside a frame payload (" +
        std::to_string(buf_.size() - pos_) + " of " +
        std::to_string(payload_len_) + " bytes)");
  }
  if (!header_.empty() || pos_ < buf_.size()) {
    return Status::ParseError("connection closed inside a frame header");
  }
  return Status::OK();
}

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-conversation must yield an
    // error Status here, not SIGPIPE the whole server.
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<ml::ExecMode> ParseExecMode(std::string_view name) {
  if (name == "operational" || name == "op") return ml::ExecMode::kOperational;
  if (name == "reduced" || name == "red") return ml::ExecMode::kReduced;
  if (name == "check_both" || name == "check" || name == "both") {
    return ml::ExecMode::kCheckBoth;
  }
  return Status::InvalidArgument(
      "unknown exec mode '" + std::string(name) +
      "' (expected operational|reduced|check_both)");
}

Result<uint16_t> ParsePort(std::string_view text, bool allow_ephemeral) {
  const Status bad = Status::InvalidArgument(
      "invalid port '" + std::string(text) + "' (expected " +
      (allow_ephemeral ? "0-65535" : "1-65535") + ")");
  if (text.empty() || text.size() > 5) return bad;
  uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return bad;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (value < (allow_ephemeral ? 0u : 1u) || value > 65535) return bad;
  return static_cast<uint16_t>(value);
}

Result<Endpoint> ParseHostPort(std::string_view text) {
  Endpoint ep;
  const size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    MULTILOG_ASSIGN_OR_RETURN(ep.port, ParsePort(text));
    return ep;
  }
  if (colon == 0) {
    return Status::InvalidArgument("invalid endpoint '" + std::string(text) +
                                   "' (empty host before ':')");
  }
  ep.host = std::string(text.substr(0, colon));
  MULTILOG_ASSIGN_OR_RETURN(ep.port, ParsePort(text.substr(colon + 1)));
  return ep;
}

Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text) {
  std::vector<Endpoint> endpoints;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view element = text.substr(begin, end - begin);
    if (element.empty()) {
      return Status::InvalidArgument(
          "invalid endpoint list '" + std::string(text) +
          "' (expected comma-separated HOST:PORT or PORT entries)");
    }
    MULTILOG_ASSIGN_OR_RETURN(Endpoint ep, ParseHostPort(element));
    endpoints.push_back(std::move(ep));
    begin = end + 1;
  }
  return endpoints;
}

const char* ExecModeName(ml::ExecMode mode) {
  switch (mode) {
    case ml::ExecMode::kOperational:
      return "operational";
    case ml::ExecMode::kReduced:
      return "reduced";
    case ml::ExecMode::kCheckBoth:
      return "check_both";
  }
  return "unknown";
}

Result<Request> ParseRequest(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const Json* cmd = json.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return Status::InvalidArgument("request is missing a string 'cmd'");
  }
  Request req;
  if (const Json* id = json.Find("id"); id != nullptr) {
    if (!id->is_int()) {
      return Status::InvalidArgument("'id' must be an integer");
    }
    req.id = id->int_value();
  }
  const std::string& name = cmd->string_value();
  if (name == "hello") {
    req.cmd = Request::Cmd::kHello;
    const Json* level = json.Find("level");
    if (level == nullptr || !level->is_string() ||
        level->string_value().empty()) {
      return Status::InvalidArgument("hello requires a non-empty 'level'");
    }
    req.level = level->string_value();
    if (const Json* mode = json.Find("mode"); mode != nullptr) {
      if (!mode->is_string()) {
        return Status::InvalidArgument("'mode' must be a string");
      }
      MULTILOG_ASSIGN_OR_RETURN(ml::ExecMode m,
                                ParseExecMode(mode->string_value()));
      req.mode = m;
    }
    return req;
  }
  if (name == "query") {
    req.cmd = Request::Cmd::kQuery;
    const Json* goal = json.Find("goal");
    if (goal == nullptr || !goal->is_string() ||
        goal->string_value().empty()) {
      return Status::InvalidArgument("query requires a non-empty 'goal'");
    }
    req.goal = goal->string_value();
    if (const Json* mode = json.Find("mode"); mode != nullptr) {
      if (!mode->is_string()) {
        return Status::InvalidArgument("'mode' must be a string");
      }
      MULTILOG_ASSIGN_OR_RETURN(ml::ExecMode m,
                                ParseExecMode(mode->string_value()));
      req.mode = m;
    }
    if (const Json* dl = json.Find("deadline_ms"); dl != nullptr) {
      if (!dl->is_int() || dl->int_value() < 0) {
        return Status::InvalidArgument(
            "'deadline_ms' must be a non-negative integer");
      }
      req.deadline_ms = dl->int_value();
    }
    if (const Json* proofs = json.Find("proofs"); proofs != nullptr) {
      if (!proofs->is_bool()) {
        return Status::InvalidArgument("'proofs' must be a boolean");
      }
      req.want_proofs = proofs->bool_value();
    }
    if (const Json* tr = json.Find("trace"); tr != nullptr) {
      if (!tr->is_bool()) {
        return Status::InvalidArgument("'trace' must be a boolean");
      }
      req.want_trace = tr->bool_value();
    }
    if (const Json* ms = json.Find("min_seqno"); ms != nullptr) {
      if (!ms->is_int() || ms->int_value() < 0) {
        return Status::InvalidArgument(
            "'min_seqno' must be a non-negative integer");
      }
      req.min_seqno = static_cast<uint64_t>(ms->int_value());
    }
    if (const Json* wm = json.Find("wait_ms"); wm != nullptr) {
      if (!wm->is_int() || wm->int_value() < 0) {
        return Status::InvalidArgument(
            "'wait_ms' must be a non-negative integer");
      }
      req.wait_ms = wm->int_value();
    }
    return req;
  }
  if (name == "sql") {
    req.cmd = Request::Cmd::kSql;
    const Json* sql = json.Find("sql");
    if (sql == nullptr || !sql->is_string() || sql->string_value().empty()) {
      return Status::InvalidArgument("sql requires a non-empty 'sql'");
    }
    req.sql = sql->string_value();
    return req;
  }
  if (name == "assert" || name == "retract") {
    req.cmd = name == "assert" ? Request::Cmd::kAssert : Request::Cmd::kRetract;
    const Json* fact = json.Find("fact");
    if (fact == nullptr || !fact->is_string() ||
        fact->string_value().empty()) {
      return Status::InvalidArgument(name + " requires a non-empty 'fact'");
    }
    req.fact = fact->string_value();
    return req;
  }
  if (name == "checkpoint") {
    req.cmd = Request::Cmd::kCheckpoint;
    return req;
  }
  if (name == "stats") {
    req.cmd = Request::Cmd::kStats;
    return req;
  }
  if (name == "metrics") {
    req.cmd = Request::Cmd::kMetrics;
    return req;
  }
  if (name == "ping") {
    req.cmd = Request::Cmd::kPing;
    return req;
  }
  if (name == "bye") {
    req.cmd = Request::Cmd::kBye;
    return req;
  }
  if (name == "shardmap") {
    req.cmd = Request::Cmd::kShardMap;
    return req;
  }
  if (name == "replicate") {
    req.cmd = Request::Cmd::kReplicate;
    if (const Json* fs = json.Find("from_seqno"); fs != nullptr) {
      if (!fs->is_int() || fs->int_value() < 0) {
        return Status::InvalidArgument(
            "'from_seqno' must be a non-negative integer");
      }
      req.from_seqno = static_cast<uint64_t>(fs->int_value());
    }
    return req;
  }
  return Status::InvalidArgument("unknown command '" + name + "'");
}

std::optional<int64_t> ExtractRequestId(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  const Json* id = json.Find("id");
  if (id == nullptr || !id->is_int()) return std::nullopt;
  return id->int_value();
}

Json ErrorResponse(const Status& status) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(false));
  j.Set("code", Json::Str(StatusCodeToString(status.code())));
  j.Set("error", Json::Str(status.message()));
  return j;
}

Json OkResponse() {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(true));
  return j;
}

}  // namespace multilog::server
