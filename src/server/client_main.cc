// multilog_client: one-shot command-line client for multilogd.
//
//   $ multilog_client --port 7690 --level s query '?- s[intel(K : source -C-> V)] << cau.'
//   $ multilog_client --port 7690 --level c sql 'select * from mission'
//   $ multilog_client --port 7690 --level s assert 's[intel(k7 : source -s-> k7, grade -s-> a)].'
//   $ multilog_client --port 7690 --level s retract 's[intel(k7 : source -s-> k7, grade -s-> a)].'
//   $ multilog_client --port 7690 --level s checkpoint
//   $ multilog_client --port 7690 --level s --file writes.mlog
//   $ multilog_client --port 7690 --level s --trace query '?- s[intel(K : source -C-> V)] << cau.'
//   $ multilog_client --port 7690 stats
//   $ multilog_client --port 7690 metrics
//
// Prints the server's JSON response; for `query`, the answers are also
// listed one per line (handy in shell pipelines and the demo script),
// and `--trace` attaches the server's per-stage span tree to the
// response. `metrics` prints the raw Prometheus text exposition.
//
// `--connect-retries N` retries a refused connection with exponential
// backoff (`--retry-backoff-ms` seeds the delay) - spawn-then-connect
// scripts use it instead of sleeping. `--min-seqno N [--wait-ms M]`
// makes a query wait until the server has applied sequence number N
// (read-your-writes against a replica).
//
// `--connect HOST:PORT[,HOST:PORT...]` replaces `--port` with a
// failover list: each round tries every endpoint in order before
// backing off, and `--connect-retries` counts rounds - so a client can
// name a primary and its replica (or several routers) and keep working
// while one of them is down:
//
//   $ multilog_client --connect 7690,127.0.0.1:7691 --level s \
//       --connect-retries 5 query '?- s[intel(K : source -C-> V)] << cau.'
//
// `shardmap` asks a router for its versioned shard map.
//
// `--file` runs a batch over one connection: each non-empty line of the
// file is `assert <fact>`, `retract <fact>`, `checkpoint`, or
// `query <goal>` ('%' and '#' start comments). The batch stops at the
// first failing line - reported as `file:lineno: error` - and exits
// non-zero, so a script can stage writes and trust that either all of
// them landed or the exit code says where it stopped. `--keep-going`
// instead runs every line and reports each failure.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"

namespace {

using namespace multilog;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--port N | --connect HOST:PORT[,HOST:PORT...])\n"
      "          [--level L] [--mode M] [--deadline-ms N] "
      "[--proofs] [--trace]\n          [--connect-retries N] "
      "[--retry-backoff-ms N] [--min-seqno N] [--wait-ms N]\n          "
      "(query GOAL | sql STMT | assert FACT "
      "| retract FACT | checkpoint | stats | metrics | ping | shardmap)\n"
      "       %s --port N --level L --file BATCH [--keep-going]\n",
      argv0, argv0);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.IsDeadlineExceeded() ? 3 : 1;
}

/// Runs a batch file over the open (hello'd) connection. Returns the
/// process exit code.
int RunBatchFile(server::Client& client, const std::string& path,
                 bool keep_going) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open batch file '%s'\n", path.c_str());
    return 2;
  }
  const server::BatchResult result =
      server::RunBatch(client, in, keep_going, &std::cout);
  for (const server::BatchFailure& failure : result.failures) {
    std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), failure.lineno,
                 failure.status.ToString().c_str());
  }
  if (!result.failures.empty()) {
    std::fprintf(stderr, "batch failed: %zu applied, %zu failed\n",
                 result.applied, result.failures.size());
    return 1;
  }
  std::printf(
      "batch ok: %zu operation(s) applied (%zu write(s): %zu level(s) "
      "delta-maintained, %zu invalidated) in %.1f ms\n",
      result.applied, result.writes, result.levels_maintained,
      result.levels_invalidated, result.wall_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7690;
  std::vector<server::Endpoint> endpoints;
  std::string level;
  std::string mode;
  std::string batch_file;
  int64_t deadline_ms = -1;
  bool proofs = false;
  bool trace = false;
  bool keep_going = false;
  int connect_retries = 1;
  int64_t retry_backoff_ms = 100;
  int64_t min_seqno = 0;
  int64_t wait_ms = 0;
  std::string command;
  std::string operand;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      Result<uint16_t> parsed = server::ParsePort(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      port = *parsed;
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      Result<std::vector<server::Endpoint>> parsed =
          server::ParseEndpointList(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--connect: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      endpoints = *std::move(parsed);
    } else if (arg == "--level") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      level = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mode = v;
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      batch_file = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      deadline_ms = std::atol(v);
    } else if (arg == "--connect-retries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      connect_retries = static_cast<int>(std::atol(v));
    } else if (arg == "--retry-backoff-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      retry_backoff_ms = std::atol(v);
    } else if (arg == "--min-seqno") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      min_seqno = std::atol(v);
    } else if (arg == "--wait-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      wait_ms = std::atol(v);
    } else if (arg == "--proofs") {
      proofs = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else if (command.empty()) {
      command = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (command.empty() == batch_file.empty()) return Usage(argv[0]);
  const bool needs_operand = command == "query" || command == "sql" ||
                             command == "assert" || command == "retract";
  if (needs_operand && operand.empty()) return Usage(argv[0]);
  const bool needs_level =
      needs_operand || command == "checkpoint" || !batch_file.empty();

  // --connect-retries waits out a daemon that is still binding (demo
  // and test scripts spawn multilogd and connect immediately); with a
  // --connect list each retry round walks the whole list (failover).
  if (endpoints.empty()) endpoints.push_back({"127.0.0.1", port});
  Result<server::Client> client = server::Client::ConnectAnyWithRetry(
      endpoints, connect_retries, retry_backoff_ms);
  if (!client.ok()) return Fail(client.status());

  if (!level.empty() || needs_level) {
    if (level.empty()) {
      std::fprintf(stderr, "error: %s requires --level\n",
                   batch_file.empty() ? command.c_str() : "--file");
      return 2;
    }
    Result<server::Json> hello = client->Hello(level, mode);
    if (!hello.ok()) return Fail(hello.status());
  }

  if (!batch_file.empty()) {
    const int code = RunBatchFile(*client, batch_file, keep_going);
    client->Bye();
    return code;
  }

  if (command == "metrics") {
    Result<std::string> body = client->Metrics();
    if (!body.ok()) return Fail(body.status());
    std::fputs(body->c_str(), stdout);
    client->Bye();
    return 0;
  }

  Result<server::Json> response = Status::Internal("unreached");
  if (command == "query") {
    response = client->Query(operand, deadline_ms, /*mode=*/"", proofs, trace,
                             static_cast<uint64_t>(min_seqno), wait_ms);
  } else if (command == "sql") {
    response = client->Sql(operand);
  } else if (command == "assert") {
    response = client->Assert(operand);
  } else if (command == "retract") {
    response = client->Retract(operand);
  } else if (command == "checkpoint") {
    response = client->Checkpoint();
  } else if (command == "stats") {
    response = client->Stats();
  } else if (command == "ping") {
    response = client->Ping();
  } else if (command == "shardmap") {
    response = client->ShardMap();
  } else {
    return Usage(argv[0]);
  }
  if (!response.ok()) return Fail(response.status());

  std::printf("%s\n", response->Serialize().c_str());
  if (command == "query") {
    if (const server::Json* answers = response->Find("answers");
        answers != nullptr && answers->is_array()) {
      for (const server::Json& answer : answers->array_items()) {
        std::printf("  %s\n", answer.string_value().c_str());
      }
    }
  }
  client->Bye();
  return 0;
}
