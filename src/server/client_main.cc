// multilog_client: one-shot command-line client for multilogd.
//
//   $ multilog_client --port 7690 --level s query '?- s[intel(K : source -C-> V)] << cau.'
//   $ multilog_client --port 7690 --level c sql 'select * from mission'
//   $ multilog_client --port 7690 stats
//
// Prints the server's JSON response; for `query`, the answers are also
// listed one per line (handy in shell pipelines and the demo script).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/client.h"

namespace {

using namespace multilog;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--level L] [--mode M] [--deadline-ms N] "
      "[--proofs]\n          (query GOAL | sql STMT | stats | ping)\n",
      argv0);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.IsDeadlineExceeded() ? 3 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7690;
  std::string level;
  std::string mode;
  int64_t deadline_ms = -1;
  bool proofs = false;
  std::string command;
  std::string operand;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--level") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      level = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mode = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      deadline_ms = std::atol(v);
    } else if (arg == "--proofs") {
      proofs = true;
    } else if (command.empty()) {
      command = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (command.empty()) return Usage(argv[0]);
  const bool needs_operand = command == "query" || command == "sql";
  if (needs_operand && operand.empty()) return Usage(argv[0]);

  Result<server::Client> client = server::Client::Connect(port);
  if (!client.ok()) return Fail(client.status());

  if (!level.empty() || needs_operand) {
    if (level.empty()) {
      std::fprintf(stderr, "error: %s requires --level\n", command.c_str());
      return 2;
    }
    Result<server::Json> hello = client->Hello(level, mode);
    if (!hello.ok()) return Fail(hello.status());
  }

  Result<server::Json> response = Status::Internal("unreached");
  if (command == "query") {
    response = client->Query(operand, deadline_ms, /*mode=*/"", proofs);
  } else if (command == "sql") {
    response = client->Sql(operand);
  } else if (command == "stats") {
    response = client->Stats();
  } else if (command == "ping") {
    response = client->Ping();
  } else {
    return Usage(argv[0]);
  }
  if (!response.ok()) return Fail(response.status());

  std::printf("%s\n", response->Serialize().c_str());
  if (command == "query") {
    if (const server::Json* answers = response->Find("answers");
        answers != nullptr && answers->is_array()) {
      for (const server::Json& answer : answers->array_items()) {
        std::printf("  %s\n", answer.string_value().c_str());
      }
    }
  }
  client->Bye();
  return 0;
}
