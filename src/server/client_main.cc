// multilog_client: one-shot command-line client for multilogd.
//
//   $ multilog_client --port 7690 --level s query '?- s[intel(K : source -C-> V)] << cau.'
//   $ multilog_client --port 7690 --level c sql 'select * from mission'
//   $ multilog_client --port 7690 --level s assert 's[intel(k7 : source -s-> k7, grade -s-> a)].'
//   $ multilog_client --port 7690 --level s retract 's[intel(k7 : source -s-> k7, grade -s-> a)].'
//   $ multilog_client --port 7690 --level s checkpoint
//   $ multilog_client --port 7690 --level s --file writes.mlog
//   $ multilog_client --port 7690 stats
//
// Prints the server's JSON response; for `query`, the answers are also
// listed one per line (handy in shell pipelines and the demo script).
//
// `--file` runs a batch over one connection: each non-empty line of the
// file is `assert <fact>`, `retract <fact>`, `checkpoint`, or
// `query <goal>` ('%' and '#' start comments). The batch stops at the
// first failing line, exiting non-zero - so a script can stage writes
// and trust that either all of them landed or the exit code says
// where it stopped.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "server/client.h"

namespace {

using namespace multilog;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--level L] [--mode M] [--deadline-ms N] "
      "[--proofs]\n          (query GOAL | sql STMT | assert FACT | "
      "retract FACT | checkpoint | stats | ping)\n       %s --port N "
      "--level L --file BATCH\n",
      argv0, argv0);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.IsDeadlineExceeded() ? 3 : 1;
}

/// Strips comments ('%' or '#' to end of line) and surrounding blanks.
std::string StripLine(std::string line) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '%' || line[i] == '#') {
      line.resize(i);
      break;
    }
  }
  const size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

/// Runs a batch file over the open (hello'd) connection. Returns the
/// process exit code.
int RunBatch(server::Client& client, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open batch file '%s'\n", path.c_str());
    return 2;
  }
  size_t lineno = 0;
  size_t applied = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = StripLine(line);
    if (stripped.empty()) continue;
    const size_t space = stripped.find_first_of(" \t");
    const std::string verb = stripped.substr(0, space);
    const std::string rest =
        space == std::string::npos ? "" : StripLine(stripped.substr(space));

    Result<server::Json> response = Status::Internal("unreached");
    if (verb == "assert" && !rest.empty()) {
      response = client.Assert(rest);
    } else if (verb == "retract" && !rest.empty()) {
      response = client.Retract(rest);
    } else if (verb == "checkpoint" && rest.empty()) {
      response = client.Checkpoint();
    } else if (verb == "query" && !rest.empty()) {
      response = client.Query(rest);
    } else {
      std::fprintf(stderr,
                   "%s:%zu: expected 'assert FACT', 'retract FACT', "
                   "'checkpoint', or 'query GOAL'\n",
                   path.c_str(), lineno);
      return 2;
    }
    if (!response.ok()) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno,
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s:%zu: %s\n", path.c_str(), lineno,
                response->Serialize().c_str());
    ++applied;
  }
  std::printf("batch ok: %zu operation(s) applied\n", applied);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7690;
  std::string level;
  std::string mode;
  std::string batch_file;
  int64_t deadline_ms = -1;
  bool proofs = false;
  std::string command;
  std::string operand;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--level") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      level = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mode = v;
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      batch_file = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      deadline_ms = std::atol(v);
    } else if (arg == "--proofs") {
      proofs = true;
    } else if (command.empty()) {
      command = arg;
    } else if (operand.empty()) {
      operand = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (command.empty() == batch_file.empty()) return Usage(argv[0]);
  const bool needs_operand = command == "query" || command == "sql" ||
                             command == "assert" || command == "retract";
  if (needs_operand && operand.empty()) return Usage(argv[0]);
  const bool needs_level =
      needs_operand || command == "checkpoint" || !batch_file.empty();

  Result<server::Client> client = server::Client::Connect(port);
  if (!client.ok()) return Fail(client.status());

  if (!level.empty() || needs_level) {
    if (level.empty()) {
      std::fprintf(stderr, "error: %s requires --level\n",
                   batch_file.empty() ? command.c_str() : "--file");
      return 2;
    }
    Result<server::Json> hello = client->Hello(level, mode);
    if (!hello.ok()) return Fail(hello.status());
  }

  if (!batch_file.empty()) {
    const int code = RunBatch(*client, batch_file);
    client->Bye();
    return code;
  }

  Result<server::Json> response = Status::Internal("unreached");
  if (command == "query") {
    response = client->Query(operand, deadline_ms, /*mode=*/"", proofs);
  } else if (command == "sql") {
    response = client->Sql(operand);
  } else if (command == "assert") {
    response = client->Assert(operand);
  } else if (command == "retract") {
    response = client->Retract(operand);
  } else if (command == "checkpoint") {
    response = client->Checkpoint();
  } else if (command == "stats") {
    response = client->Stats();
  } else if (command == "ping") {
    response = client->Ping();
  } else {
    return Usage(argv[0]);
  }
  if (!response.ok()) return Fail(response.status());

  std::printf("%s\n", response->Serialize().c_str());
  if (command == "query") {
    if (const server::Json* answers = response->Find("answers");
        answers != nullptr && answers->is_array()) {
      for (const server::Json& answer : answers->array_items()) {
        std::printf("  %s\n", answer.string_value().c_str());
      }
    }
  }
  client->Bye();
  return 0;
}
