#include "server/metrics.h"

#include <algorithm>

namespace multilog::server {

namespace {

/// Index of the histogram bucket covering `micros`: floor(log2) capped.
size_t BucketOf(uint64_t micros) {
  size_t b = 0;
  while (micros > 1 && b + 1 < LatencyHistogram::kBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}

const char* kModeNames[] = {"operational", "reduced", "check_both"};

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_micros = total_micros_.load(std::memory_order_relaxed);
  s.max_micros = max_micros_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

uint64_t LatencyHistogram::Snapshot::PercentileMicros(double p) const {
  if (count == 0) return 0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Rank of the requested recording, 1-based, ceiling - p100 is the max
  // recording's bucket, p0 the min's.
  uint64_t rank = static_cast<uint64_t>(clamped / 100.0 *
                                        static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return uint64_t{1} << (i + 1);  // bucket upper bound
  }
  return max_micros;
}

ServerMetrics::ServerMetrics(const std::vector<std::string>& levels)
    : level_names_(levels), by_level_(levels.size()) {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    level_index_[level_names_[i]] = i;
  }
}

void ServerMetrics::RecordQuery(const std::string& level, size_t mode_index,
                                uint64_t micros) {
  auto it = level_index_.find(level);
  if (it != level_index_.end() && mode_index < kModes) {
    by_level_[it->second].by_mode[mode_index].fetch_add(
        1, std::memory_order_relaxed);
  }
  latency_.Record(micros);
}

Json ServerMetrics::ToJson() const {
  Json root = Json::Object();
  root.Set("uptime_ms",
           Json::Int(std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));

  Json conns = Json::Object();
  conns.Set("accepted", Json::Int(static_cast<int64_t>(
                            connections_accepted.load())));
  conns.Set("rejected", Json::Int(static_cast<int64_t>(
                            connections_rejected.load())));
  conns.Set("open", Json::Int(static_cast<int64_t>(
                        connections_open.load())));
  root.Set("connections", std::move(conns));

  Json reqs = Json::Object();
  reqs.Set("total", Json::Int(static_cast<int64_t>(requests_total.load())));
  reqs.Set("oversized",
           Json::Int(static_cast<int64_t>(rejected_oversized.load())));
  reqs.Set("malformed",
           Json::Int(static_cast<int64_t>(rejected_malformed.load())));
  reqs.Set("overloaded",
           Json::Int(static_cast<int64_t>(rejected_overloaded.load())));
  root.Set("requests", std::move(reqs));

  Json queries = Json::Object();
  queries.Set("ok", Json::Int(static_cast<int64_t>(queries_ok.load())));
  queries.Set("errors", Json::Int(static_cast<int64_t>(query_errors.load())));
  queries.Set("deadline_exceeded",
              Json::Int(static_cast<int64_t>(deadline_exceeded.load())));
  queries.Set("rows_returned",
              Json::Int(static_cast<int64_t>(rows_returned.load())));

  Json by_level = Json::Object();
  for (size_t i = 0; i < level_names_.size(); ++i) {
    Json per_mode = Json::Object();
    for (size_t m = 0; m < kModes; ++m) {
      per_mode.Set(kModeNames[m],
                   Json::Int(static_cast<int64_t>(
                       by_level_[i].by_mode[m].load())));
    }
    by_level.Set(level_names_[i], std::move(per_mode));
  }
  queries.Set("by_level", std::move(by_level));

  const LatencyHistogram::Snapshot snap = latency_.Snap();
  Json lat = Json::Object();
  lat.Set("count", Json::Int(static_cast<int64_t>(snap.count)));
  lat.Set("mean_ms", Json::Double(snap.MeanMicros() / 1000.0));
  lat.Set("p50_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(50)) /
                       1000.0));
  lat.Set("p95_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(95)) /
                       1000.0));
  lat.Set("p99_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(99)) /
                       1000.0));
  lat.Set("max_ms",
          Json::Double(static_cast<double>(snap.max_micros) / 1000.0));
  queries.Set("latency", std::move(lat));
  root.Set("queries", std::move(queries));

  Json writes = Json::Object();
  writes.Set("ok", Json::Int(static_cast<int64_t>(writes_ok.load())));
  writes.Set("errors", Json::Int(static_cast<int64_t>(write_errors.load())));
  root.Set("writes", std::move(writes));
  return root;
}

}  // namespace multilog::server
