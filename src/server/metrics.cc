#include "server/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace multilog::server {

namespace {

/// Index of the histogram bucket covering `micros`: floor(log2) capped.
size_t BucketOf(uint64_t micros) {
  size_t b = 0;
  while (micros > 1 && b + 1 < LatencyHistogram::kBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}

const char* kModeNames[] = {"operational", "reduced", "check_both"};

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_micros = total_micros_.load(std::memory_order_relaxed);
  s.max_micros = max_micros_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

uint64_t LatencyHistogram::Snapshot::PercentileMicros(double p) const {
  if (count == 0) return 0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Rank of the requested recording, 1-based, ceiling - p100 is the max
  // recording's bucket, p0 the min's. The old truncating rank both
  // floored p100 into the wrong bucket and let rounding push the rank
  // past the last recording; ceil + the two clamps pin every edge.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;      // p = 0 still addresses the first recording
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen < rank) continue;
    // The last bucket is open-ended ([2^39, inf): BucketOf caps there),
    // so its only honest upper bound is the observed maximum; for the
    // others, never report a bound above it either (a lone 5 us
    // recording reads as 5 us, not its bucket's 8 us ceiling).
    if (i + 1 >= buckets.size()) return max_micros;
    return std::min(uint64_t{1} << (i + 1), max_micros);
  }
  // Racing Record calls can leave a snapshot whose count is ahead of
  // its bucket sums; fall back to the maximum rather than overrun.
  return max_micros;
}

ServerMetrics::ServerMetrics(const std::vector<std::string>& levels)
    : level_names_(levels), by_level_(levels.size()) {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    level_index_[level_names_[i]] = i;
  }
}

void ServerMetrics::RecordQuery(const std::string& level, size_t mode_index,
                                uint64_t micros) {
  auto it = level_index_.find(level);
  if (it != level_index_.end() && mode_index < kModes) {
    by_level_[it->second].by_mode[mode_index].fetch_add(
        1, std::memory_order_relaxed);
  }
  latency_.Record(micros);
}

Json ServerMetrics::ToJson() const {
  Json root = Json::Object();
  root.Set("uptime_ms",
           Json::Int(std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count()));

  Json conns = Json::Object();
  conns.Set("accepted", Json::Int(static_cast<int64_t>(
                            connections_accepted.load())));
  conns.Set("rejected", Json::Int(static_cast<int64_t>(
                            connections_rejected.load())));
  conns.Set("open", Json::Int(static_cast<int64_t>(
                        connections_open.load())));
  conns.Set("reaped", Json::Int(static_cast<int64_t>(
                          sessions_reaped.load())));
  root.Set("connections", std::move(conns));

  Json reqs = Json::Object();
  reqs.Set("total", Json::Int(static_cast<int64_t>(requests_total.load())));
  reqs.Set("oversized",
           Json::Int(static_cast<int64_t>(rejected_oversized.load())));
  reqs.Set("malformed",
           Json::Int(static_cast<int64_t>(rejected_malformed.load())));
  reqs.Set("overloaded",
           Json::Int(static_cast<int64_t>(rejected_overloaded.load())));
  reqs.Set("response_write_errors",
           Json::Int(static_cast<int64_t>(response_write_errors.load())));
  root.Set("requests", std::move(reqs));

  Json queries = Json::Object();
  queries.Set("ok", Json::Int(static_cast<int64_t>(queries_ok.load())));
  queries.Set("errors", Json::Int(static_cast<int64_t>(query_errors.load())));
  queries.Set("deadline_exceeded",
              Json::Int(static_cast<int64_t>(deadline_exceeded.load())));
  queries.Set("rows_returned",
              Json::Int(static_cast<int64_t>(rows_returned.load())));

  Json by_level = Json::Object();
  for (size_t i = 0; i < level_names_.size(); ++i) {
    Json per_mode = Json::Object();
    for (size_t m = 0; m < kModes; ++m) {
      per_mode.Set(kModeNames[m],
                   Json::Int(static_cast<int64_t>(
                       by_level_[i].by_mode[m].load())));
    }
    by_level.Set(level_names_[i], std::move(per_mode));
  }
  queries.Set("by_level", std::move(by_level));

  const LatencyHistogram::Snapshot snap = latency_.Snap();
  Json lat = Json::Object();
  lat.Set("count", Json::Int(static_cast<int64_t>(snap.count)));
  lat.Set("mean_ms", Json::Double(snap.MeanMicros() / 1000.0));
  lat.Set("p50_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(50)) /
                       1000.0));
  lat.Set("p95_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(95)) /
                       1000.0));
  lat.Set("p99_ms",
          Json::Double(static_cast<double>(snap.PercentileMicros(99)) /
                       1000.0));
  lat.Set("max_ms",
          Json::Double(static_cast<double>(snap.max_micros) / 1000.0));
  queries.Set("latency", std::move(lat));
  root.Set("queries", std::move(queries));

  Json writes = Json::Object();
  writes.Set("ok", Json::Int(static_cast<int64_t>(writes_ok.load())));
  writes.Set("errors", Json::Int(static_cast<int64_t>(write_errors.load())));
  root.Set("writes", std::move(writes));
  return root;
}

namespace {

/// Formats a double the way Prometheus expects (no exponent surprises;
/// enough digits to round-trip microsecond sums).
std::string PromDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Backslash, double quote, and newline must be escaped inside label
/// values (exposition format 0.0.4).
std::string PromLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void PromFamily(std::string* out, const char* name, const char* help,
                const char* type) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void PromCounter(std::string* out, const char* name, const char* help,
                 uint64_t value, const char* type = "counter") {
  PromFamily(out, name, help, type);
  out->append(name).append(" ").append(std::to_string(value)).append("\n");
}

}  // namespace

std::string ServerMetrics::PrometheusText() const {
  std::string out;
  PromCounter(&out, "multilog_connections_accepted_total",
              "Connections accepted.", connections_accepted.load());
  PromCounter(&out, "multilog_connections_rejected_total",
              "Connections refused by admission control.",
              connections_rejected.load());
  PromCounter(&out, "multilog_connections_open",
              "Connections currently open.", connections_open.load(),
              "gauge");
  PromCounter(&out, "multilog_sessions_reaped_total",
              "Session states freed by the event loop.",
              sessions_reaped.load());
  PromCounter(&out, "multilog_requests_total",
              "Well-framed requests received.", requests_total.load());
  PromCounter(&out, "multilog_requests_rejected_oversized_total",
              "Frames over the request size limit.",
              rejected_oversized.load());
  PromCounter(&out, "multilog_requests_rejected_malformed_total",
              "Requests with broken framing, JSON, or schema.",
              rejected_malformed.load());
  PromCounter(&out, "multilog_requests_rejected_overloaded_total",
              "Requests refused at the in-flight cap.",
              rejected_overloaded.load());
  PromCounter(&out, "multilog_queries_ok_total", "Queries answered.",
              queries_ok.load());
  PromCounter(&out, "multilog_query_errors_total",
              "Queries that returned an error.", query_errors.load());
  PromCounter(&out, "multilog_query_deadline_exceeded_total",
              "Queries cancelled by their deadline.",
              deadline_exceeded.load());
  PromCounter(&out, "multilog_query_rows_returned_total",
              "Answer rows returned.", rows_returned.load());
  PromCounter(&out, "multilog_writes_ok_total",
              "Mutations (assert/retract/checkpoint) committed.",
              writes_ok.load());
  PromCounter(&out, "multilog_write_errors_total",
              "Mutations rejected or failed.", write_errors.load());
  PromCounter(&out, "multilog_response_write_errors_total",
              "Response frames that failed to send (session closed).",
              response_write_errors.load());

  PromFamily(&out, "multilog_queries_by_level_total",
             "Queries answered, by session level and exec mode.", "counter");
  for (size_t i = 0; i < level_names_.size(); ++i) {
    for (size_t m = 0; m < kModes; ++m) {
      out.append("multilog_queries_by_level_total{level=\"")
          .append(PromLabelValue(level_names_[i]))
          .append("\",mode=\"")
          .append(kModeNames[m])
          .append("\"} ")
          .append(std::to_string(by_level_[i].by_mode[m].load()))
          .append("\n");
    }
  }

  // Histogram: cumulative le buckets in seconds. Bucket i of the
  // power-of-two µs histogram has upper bound 2^(i+1) µs.
  const LatencyHistogram::Snapshot snap = latency_.Snap();
  PromFamily(&out, "multilog_query_latency_seconds",
             "End-to-end engine query latency.", "histogram");
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    cumulative += snap.buckets[i];
    const double upper =
        static_cast<double>(uint64_t{1} << (i + 1)) / 1e6;
    out.append("multilog_query_latency_seconds_bucket{le=\"")
        .append(PromDouble(upper))
        .append("\"} ")
        .append(std::to_string(cumulative))
        .append("\n");
  }
  // A snapshot racing Record may see a bucket increment before the
  // count increment; +Inf must still be the largest bucket, and _count
  // must equal it.
  const uint64_t total = std::max(snap.count, cumulative);
  out.append("multilog_query_latency_seconds_bucket{le=\"+Inf\"} ")
      .append(std::to_string(total))
      .append("\n");
  out.append("multilog_query_latency_seconds_sum ")
      .append(PromDouble(static_cast<double>(snap.total_micros) / 1e6))
      .append("\n");
  out.append("multilog_query_latency_seconds_count ")
      .append(std::to_string(total))
      .append("\n");
  return out;
}

}  // namespace multilog::server
