// multilogd: serve a MultiLog database over TCP.
//
//   $ multilogd --sample --port 7690
//   $ multilogd --db mission.mlog --port 7690 --workers 8
//   $ multilogd --db mission.mlog --data-dir /var/lib/multilog
//
// With --sample the server loads the paper's D1 database (Figure 10)
// and additionally exposes the Figure 1 Mission relation to the `sql`
// command. Clients speak the length-delimited JSON protocol described
// in src/server/protocol.h (see also `multilog_client`).
//
// With --data-dir the database is durable: on first start the --db (or
// --sample) source seeds the directory's snapshot; on every later start
// the directory wins - the snapshot plus WAL replay reconstruct exactly
// the state as of the last acknowledged write, and the `assert` /
// `retract` / `checkpoint` commands are persisted there. A torn WAL
// tail (crash mid-append) is truncated and reported on stderr at boot.
//
// With --replica-of HOST:PORT the daemon is a read-only replica: a
// background replicator streams the primary's WAL (snapshot catch-up
// included), applies it through the engine, and - when --data-dir is
// also given - persists it locally so a restarted replica resumes from
// its own applied seqno. Client writes are rejected with ReadOnly;
// reads, stats, and metrics serve normally:
//
//   $ multilogd --sample --port 7690 --data-dir /var/lib/ml-primary
//   $ multilogd --sample --port 7691 --data-dir /var/lib/ml-replica \
//       --replica-of 127.0.0.1:7690
//
// With --router --shards HOST:PORT,... the daemon is a scatter-gather
// query router instead of an engine: it speaks the same protocol, but
// routes each query/write to the hash-owning shard (or scatters wide
// queries across all of them) - see src/sharding/router.h. The --db /
// --sample source is parsed for the lattice and the routing analysis
// only; the shards must have been seeded with the matching per-shard
// partition of the same source (examples/sharding_demo.sh shows the
// full flow):
//
//   $ multilogd --sample --port 7101 --data-dir /var/lib/ml-shard-0
//   $ multilogd --sample --port 7102 --data-dir /var/lib/ml-shard-1
//   $ multilogd --sample --router --shards 7101,7102 --port 7690

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <semaphore.h>
#include <sstream>
#include <string>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "replication/replicator.h"
#include "server/server.h"
#include "sharding/router.h"
#include "storage/storage.h"

namespace {

using namespace multilog;

// Signal handlers can only poke async-signal-safe primitives; the main
// thread parks on this semaphore until SIGINT/SIGTERM posts it.
sem_t g_shutdown;

void HandleSignal(int) { sem_post(&g_shutdown); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--db FILE | --sample) [--data-dir DIR] [--port N]\n"
      "          [--replica-of HOST:PORT]  (serve as a read-only replica)\n"
      "          [--router --shards HOST:PORT,...]  (serve as the\n"
      "                                 scatter-gather router over shards)\n"
      "          [--workers N] [--max-conns N] [--max-inflight N]\n"
      "          [--max-request-bytes N] [--deadline-ms N]\n"
      "          [--mode operational|reduced|check_both]\n"
      "          [--slow-query-ms N]   (log queries >= N ms to stderr)\n"
      "          [--no-incremental]    (invalidate caches on writes instead\n"
      "                                 of delta-maintaining them)\n"
      "          [--no-magic]          (disable goal-directed magic-set\n"
      "                                 plans; always evaluate bottom-up)\n"
      "          [--no-group-commit]   (fsync each write alone instead of\n"
      "                                 batching concurrent commits)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string data_dir;
  bool use_sample = false;
  bool is_replica = false;
  bool is_router = false;
  std::vector<server::Endpoint> shard_endpoints;
  server::ServerOptions options;
  ml::EngineOptions engine_options;
  replication::Replicator::Options replica_options;
  options.port = 7690;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      db_path = v;
    } else if (arg == "--sample") {
      use_sample = true;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--replica-of") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "--replica-of expects HOST:PORT, got '%s'\n", v);
        return 2;
      }
      Result<uint16_t> port = server::ParsePort(spec.substr(colon + 1));
      if (!port.ok()) {
        std::fprintf(stderr, "--replica-of: %s\n",
                     port.status().ToString().c_str());
        return 2;
      }
      replica_options.host = spec.substr(0, colon);
      replica_options.port = *port;
      is_replica = true;
    } else if (arg == "--router") {
      is_router = true;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      Result<std::vector<server::Endpoint>> endpoints =
          server::ParseEndpointList(v);
      if (!endpoints.ok()) {
        std::fprintf(stderr, "--shards: %s\n",
                     endpoints.status().ToString().c_str());
        return 2;
      }
      shard_endpoints = *std::move(endpoints);
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      // 0 stays legal for the daemon: "bind an OS-assigned port" (the
      // demo scripts rely on it and read the real port from the banner).
      Result<uint16_t> port = server::ParsePort(v, /*allow_ephemeral=*/true);
      if (!port.ok()) {
        std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
        return 2;
      }
      options.port = *port;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_workers = static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-conns") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_connections = static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_in_flight = static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-request-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_request_bytes = static_cast<size_t>(std::atol(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.default_deadline_ms = std::atol(v);
    } else if (arg == "--slow-query-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.slow_query_ms = std::atol(v);
    } else if (arg == "--no-incremental") {
      engine_options.incremental = false;
    } else if (arg == "--no-magic") {
      engine_options.magic = false;
    } else if (arg == "--no-group-commit") {
      engine_options.group_commit = false;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      Result<ml::ExecMode> mode = server::ParseExecMode(v);
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 2;
      }
      options.default_mode = *mode;
    } else {
      return Usage(argv[0]);
    }
  }
  if (use_sample == !db_path.empty()) return Usage(argv[0]);
  if (is_router != !shard_endpoints.empty()) {
    std::fprintf(stderr, "--router and --shards go together\n");
    return Usage(argv[0]);
  }
  if (is_router && (is_replica || !data_dir.empty())) {
    std::fprintf(stderr,
                 "--router holds no data: it takes neither --data-dir nor "
                 "--replica-of\n");
    return Usage(argv[0]);
  }

  std::string source;
  Result<mls::MissionDataset> dataset = Status::Internal("unused");
  std::vector<server::SqlCatalogEntry> catalog;
  if (use_sample) {
    source = mls::D1Source();
    dataset = mls::BuildMissionDataset();
    if (!dataset.ok()) {
      std::fprintf(stderr, "sample dataset: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    catalog.push_back({"mission", dataset->mission.get()});
  } else {
    std::ifstream in(db_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", db_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  if (is_router) {
    sharding::RouterOptions router_options;
    router_options.port = options.port;
    router_options.max_connections = options.max_connections;
    router_options.max_request_bytes = options.max_request_bytes;
    router_options.default_deadline_ms = options.default_deadline_ms;
    router_options.default_mode = options.default_mode;
    for (const server::Endpoint& ep : shard_endpoints) {
      router_options.shards.push_back({ep.host, ep.port});
    }
    sharding::Router router(source, router_options);
    if (Status s = router.Start(); !s.ok()) {
      std::fprintf(stderr, "router: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("multilog-router listening on 127.0.0.1:%u (%zu shards, %s)\n",
                router.port(), router.shard_map().num_shards(),
                sharding::kShardHashName);
    std::fflush(stdout);
    sem_init(&g_shutdown, 0, 0);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
    }
    std::printf("shutting down\n");
    router.Stop();
    return 0;
  }

  Result<storage::Storage> storage = Status::Internal("unused");
  Result<ml::Engine> engine = Status::Internal("unused");
  if (!data_dir.empty()) {
    storage = storage::Storage::Open(data_dir, source);
    if (!storage.ok()) {
      std::fprintf(stderr, "storage: %s\n",
                   storage.status().ToString().c_str());
      return 1;
    }
    if (!storage->recovered().data_loss.ok()) {
      // Recoverable by design: the torn tail is already truncated and
      // everything durably acknowledged is intact. Operators still want
      // to know a crash interrupted an append.
      std::fprintf(stderr, "recovery: %s\n",
                   storage->recovered().data_loss.ToString().c_str());
    }
    engine = ml::Engine::FromStorage(&*storage, engine_options);
  } else {
    engine = ml::Engine::FromSource(source, engine_options);
  }
  if (!engine.ok()) {
    std::fprintf(stderr, "database: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A replica rejects client writes; the replication stream is the only
  // writer. The engine seed (--db/--sample) must be the same database
  // the primary serves - the security lattice has to match, and catch-up
  // replaces the facts wholesale on the first snapshot install anyway.
  if (is_replica) options.read_only = true;

  server::Server srv(&*engine, options, std::move(catalog));
  std::optional<replication::Replicator> replicator;
  if (is_replica) {
    replicator.emplace(&*engine, replica_options);
    srv.SetReplicator(&*replicator);
  }
  if (Status s = srv.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (replicator.has_value()) replicator->Start();
  std::printf("multilogd listening on 127.0.0.1:%u (%zu workers, levels:",
              srv.port(), options.num_workers);
  for (const std::string& level : engine->lattice().TopologicalOrder()) {
    std::printf(" %s", level.c_str());
  }
  std::printf(")\n");
  if (!data_dir.empty()) {
    std::printf("durable: %s (next seqno %llu)\n", data_dir.c_str(),
                static_cast<unsigned long long>(storage->next_seqno()));
  }
  if (is_replica) {
    std::printf("read-only replica of %s:%u (applied seqno %llu)\n",
                replica_options.host.c_str(), replica_options.port,
                static_cast<unsigned long long>(engine->AppliedSeqno()));
  }
  std::fflush(stdout);

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }
  std::printf("shutting down\n");
  // Replicator first: once it stops applying, the server drain below
  // sees a quiescent engine; the reverse order would race stream applies
  // against connection teardown for no benefit.
  if (replicator.has_value()) replicator->Stop();
  srv.Stop();
  return 0;
}
