#ifndef MULTILOG_SERVER_PROTOCOL_H_
#define MULTILOG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "multilog/engine.h"
#include "server/json.h"

namespace multilog::server {

/// # The multilogd wire protocol
///
/// Length-delimited JSON over TCP. One frame is
///
///     <decimal byte count> '\n' <exactly that many bytes of UTF-8 JSON>
///
/// in both directions. A client that waits for each response before
/// sending the next request needs nothing more. A client may instead
/// *pipeline*: tag each request with an optional integer `id` member
/// and keep several in flight on one connection; the server echoes the
/// `id` in the matching response, and tagged responses may complete
/// out of order (queries run on a worker pool). Untagged pipelined
/// requests are legal but indistinguishable, so only `id`-tagged
/// requests should ever overlap. HELLO, BYE, and `replicate` stay
/// ordered: the server defers them until every in-flight request on
/// the session has completed. The full grammar, session rules, and
/// limits are documented in DESIGN.md §11 and §18.
///
/// Requests (the `cmd` member selects):
///   {"cmd":"hello","level":L,"mode":M?}     bind the session clearance
///   {"cmd":"query","goal":G,"mode":M?,"deadline_ms":N?,"proofs":B?,
///    "trace":B?,"min_seqno":N?,"wait_ms":N?}  trace = per-stage span tree;
///                                           min_seqno = bounded-staleness
///                                           floor (waits up to wait_ms for
///                                           applied_seqno to reach it, then
///                                           fails with DeadlineExceeded)
///   {"cmd":"sql","sql":S}                   MSQL at the session level
///   {"cmd":"assert","fact":F}               write F at the session level
///   {"cmd":"retract","fact":F}              remove F at the session level
///   {"cmd":"checkpoint"}                    fold the WAL into a snapshot
///   {"cmd":"stats"}                         the metrics surface (JSON)
///   {"cmd":"metrics"}                       Prometheus text exposition
///   {"cmd":"ping"}                          liveness probe
///   {"cmd":"bye"}                           orderly close
///   {"cmd":"replicate","from_seqno":N}      become a replication stream
///   {"cmd":"shardmap"}                      the versioned shard map
///                                           (served by multilogd --router;
///                                           a plain engine daemon refuses)
///
/// `replicate` is the one departure from strict request/response: the
/// server turns the connection into a one-way stream of frames -
/// {"ok":true,"kind":"snapshot","seqno":S,"source":SRC} for catch-up,
/// {"ok":true,"kind":"record","rtype":"assert"|"retract","seqno":S,
///  "level":L,"fact":F} for live WAL tail, and
/// {"ok":true,"kind":"heartbeat","next_seqno":N} while idle - until the
/// peer disconnects or the server stops (see replication/log_shipper.h).
/// Like `stats`, it needs no HELLO: the daemon binds loopback only, and
/// a replication link is a trusted channel that by construction carries
/// every level's records (the replica re-enforces per-level visibility
/// when *its* clients read).
///
/// Writes run at exactly the session clearance (the fact's level must
/// equal it - the engine enforces no write-up/write-down) and serialize
/// against in-flight queries behind the engine's database lock.
///
/// Responses: {"ok":true, ...} or
///   {"ok":false,"code":<StatusCodeToString>,"error":<message>}.
///
/// Error handling is two-tier, mirroring what the peer can recover
/// from: *payload*-level problems (bad JSON, unknown command, unknown
/// level, query errors) get a structured error response and the
/// connection stays open; *framing*-level problems (unparseable length
/// header, declared length over the limit, truncated payload) get a
/// best-effort error frame followed by connection close, because the
/// byte stream can no longer be resynchronized.

/// Hard cap a frame header may declare regardless of configuration
/// (defense against absurd allocations before options are consulted).
constexpr size_t kAbsoluteMaxFrameBytes = 64u << 20;  // 64 MiB

/// Reads one frame from `fd`. Returns:
///  - the payload on success,
///  - nullopt on clean EOF at a frame boundary (peer closed),
///  - ParseError for an unparseable header or a payload truncated by
///    EOF, ResourceExhausted when the declared length exceeds
///    `max_bytes` (the declared length is NOT read in that case).
Result<std::optional<std::string>> ReadFrame(int fd, size_t max_bytes);

/// Writes one frame (header + payload) to `fd`.
Status WriteFrame(int fd, std::string_view payload);

/// Incremental frame reassembly for nonblocking sockets: the event
/// loop Feed()s whatever bytes arrived and Next() yields complete
/// payloads as they close. Identical acceptance rules and error codes
/// to the blocking ReadFrame above - the robustness corpus replays the
/// same hostile byte streams against both - but the decoder never
/// blocks and never loses bytes across calls, so a frame split at any
/// byte boundary reassembles exactly.
class FrameDecoder {
 public:
  /// `max_bytes` mirrors ServerOptions::max_request_bytes: a declared
  /// length above it (or kAbsoluteMaxFrameBytes) is refused before any
  /// payload byte is buffered.
  explicit FrameDecoder(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Appends newly received bytes to the reassembly buffer.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame:
  ///  - a payload when one whole frame is buffered,
  ///  - nullopt when more bytes are needed (call Feed again),
  ///  - ParseError / ResourceExhausted on framing damage, after which
  ///    the stream cannot be resynchronized and the connection must
  ///    close (further Next() calls repeat the error).
  Result<std::optional<std::string>> Next();

  /// True while buffered bytes sit mid-frame - EOF now means the peer
  /// truncated a frame rather than closing at a boundary.
  bool mid_frame() const {
    return failed_ || in_payload_ || !header_.empty() || pos_ < buf_.size();
  }

  /// The status EOF deserves at this point: OK at a frame boundary,
  /// otherwise the same ParseError ReadFrame reports for a stream cut
  /// inside a header or payload.
  Status OnEof() const;

 private:
  size_t max_bytes_;
  std::string buf_;
  size_t pos_ = 0;          // consumed prefix of buf_
  std::string header_;      // digits of the in-progress header
  bool in_payload_ = false; // header accepted, collecting payload_len_
  size_t payload_len_ = 0;
  bool failed_ = false;     // framing damage is terminal
  Status fail_status_;
};

/// A parsed, schema-validated request.
struct Request {
  enum class Cmd {
    kHello,
    kQuery,
    kSql,
    kAssert,
    kRetract,
    kCheckpoint,
    kStats,
    kMetrics,
    kPing,
    kBye,
    kReplicate,
    kShardMap
  };
  Cmd cmd = Cmd::kPing;
  std::string level;         // hello
  std::optional<ml::ExecMode> mode;  // hello or query override
  std::string goal;          // query
  std::string sql;           // sql
  std::string fact;          // assert / retract
  int64_t deadline_ms = -1;  // query; -1 = server default
  bool want_proofs = false;  // query (operational modes only)
  bool want_trace = false;   // query: attach the per-stage span tree
  uint64_t min_seqno = 0;    // query: bounded-staleness floor; 0 = any
  int64_t wait_ms = 0;       // query: how long to wait for min_seqno
  uint64_t from_seqno = 0;   // replicate: resume after this seqno
  /// Pipelining tag: echoed verbatim as the response's "id" member.
  /// Requests without one get untagged responses (strict
  /// request/response clients never notice the feature exists).
  std::optional<int64_t> id;
};

/// The "id" member of a request object, if it carries a valid one -
/// usable even when ParseRequest rejects the rest of the request, so
/// error responses to pipelined requests still land on the right tag.
std::optional<int64_t> ExtractRequestId(const Json& json);

/// Validates the JSON shape of a request (presence and types of the
/// members each command requires). Lattice-dependent checks (does the
/// level exist?) happen in the server, which owns the engine.
Result<Request> ParseRequest(const Json& json);

/// Wire names for ExecMode: "operational", "reduced", "check_both"
/// (aliases "op", "red", "both", "check" are accepted on input).
Result<ml::ExecMode> ParseExecMode(std::string_view name);
const char* ExecModeName(ml::ExecMode mode);

/// Parses a TCP port for the CLI tools: the text must be all digits
/// and in [1, 65535]. Rejects what `atoi` silently mangles - empty
/// strings, trailing junk ("80x"), negatives, and values past 65535
/// that a uint16_t cast would wrap ("70000" -> 4464). The daemon
/// passes `allow_ephemeral` so "--port 0" keeps its meaning of "bind
/// an OS-assigned port"; a client has nothing to connect to at 0.
Result<uint16_t> ParsePort(std::string_view text, bool allow_ephemeral = false);

/// A dialable address for the CLI tools and the router.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "HOST:PORT" or a bare "PORT" (host defaults to 127.0.0.1).
/// The port obeys ParsePort's rules; the host is not resolved here
/// (Client::Connect validates it when dialing).
Result<Endpoint> ParseHostPort(std::string_view text);

/// Parses a comma-separated endpoint list, e.g.
/// "7101,127.0.0.1:7102,localhost:7103". Empty elements and an empty
/// list are rejected. This is the spelling of `multilogd --shards` and
/// `multilog_client --connect`.
Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text);

/// {"ok":false,"code":...,"error":...} from a non-OK status.
Json ErrorResponse(const Status& status);

/// {"ok":true} ready for command-specific members.
Json OkResponse();

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_PROTOCOL_H_
