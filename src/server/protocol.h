#ifndef MULTILOG_SERVER_PROTOCOL_H_
#define MULTILOG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "multilog/engine.h"
#include "server/json.h"

namespace multilog::server {

/// # The multilogd wire protocol
///
/// Length-delimited JSON over TCP. One frame is
///
///     <decimal byte count> '\n' <exactly that many bytes of UTF-8 JSON>
///
/// in both directions; requests and responses alternate strictly (no
/// pipelining). The full grammar, session rules, and limits are
/// documented in DESIGN.md §11.
///
/// Requests (the `cmd` member selects):
///   {"cmd":"hello","level":L,"mode":M?}     bind the session clearance
///   {"cmd":"query","goal":G,"mode":M?,"deadline_ms":N?,"proofs":B?,
///    "trace":B?,"min_seqno":N?,"wait_ms":N?}  trace = per-stage span tree;
///                                           min_seqno = bounded-staleness
///                                           floor (waits up to wait_ms for
///                                           applied_seqno to reach it, then
///                                           fails with DeadlineExceeded)
///   {"cmd":"sql","sql":S}                   MSQL at the session level
///   {"cmd":"assert","fact":F}               write F at the session level
///   {"cmd":"retract","fact":F}              remove F at the session level
///   {"cmd":"checkpoint"}                    fold the WAL into a snapshot
///   {"cmd":"stats"}                         the metrics surface (JSON)
///   {"cmd":"metrics"}                       Prometheus text exposition
///   {"cmd":"ping"}                          liveness probe
///   {"cmd":"bye"}                           orderly close
///   {"cmd":"replicate","from_seqno":N}      become a replication stream
///   {"cmd":"shardmap"}                      the versioned shard map
///                                           (served by multilogd --router;
///                                           a plain engine daemon refuses)
///
/// `replicate` is the one departure from strict request/response: the
/// server turns the connection into a one-way stream of frames -
/// {"ok":true,"kind":"snapshot","seqno":S,"source":SRC} for catch-up,
/// {"ok":true,"kind":"record","rtype":"assert"|"retract","seqno":S,
///  "level":L,"fact":F} for live WAL tail, and
/// {"ok":true,"kind":"heartbeat","next_seqno":N} while idle - until the
/// peer disconnects or the server stops (see replication/log_shipper.h).
/// Like `stats`, it needs no HELLO: the daemon binds loopback only, and
/// a replication link is a trusted channel that by construction carries
/// every level's records (the replica re-enforces per-level visibility
/// when *its* clients read).
///
/// Writes run at exactly the session clearance (the fact's level must
/// equal it - the engine enforces no write-up/write-down) and serialize
/// against in-flight queries behind the engine's database lock.
///
/// Responses: {"ok":true, ...} or
///   {"ok":false,"code":<StatusCodeToString>,"error":<message>}.
///
/// Error handling is two-tier, mirroring what the peer can recover
/// from: *payload*-level problems (bad JSON, unknown command, unknown
/// level, query errors) get a structured error response and the
/// connection stays open; *framing*-level problems (unparseable length
/// header, declared length over the limit, truncated payload) get a
/// best-effort error frame followed by connection close, because the
/// byte stream can no longer be resynchronized.

/// Hard cap a frame header may declare regardless of configuration
/// (defense against absurd allocations before options are consulted).
constexpr size_t kAbsoluteMaxFrameBytes = 64u << 20;  // 64 MiB

/// Reads one frame from `fd`. Returns:
///  - the payload on success,
///  - nullopt on clean EOF at a frame boundary (peer closed),
///  - ParseError for an unparseable header or a payload truncated by
///    EOF, ResourceExhausted when the declared length exceeds
///    `max_bytes` (the declared length is NOT read in that case).
Result<std::optional<std::string>> ReadFrame(int fd, size_t max_bytes);

/// Writes one frame (header + payload) to `fd`.
Status WriteFrame(int fd, std::string_view payload);

/// A parsed, schema-validated request.
struct Request {
  enum class Cmd {
    kHello,
    kQuery,
    kSql,
    kAssert,
    kRetract,
    kCheckpoint,
    kStats,
    kMetrics,
    kPing,
    kBye,
    kReplicate,
    kShardMap
  };
  Cmd cmd = Cmd::kPing;
  std::string level;         // hello
  std::optional<ml::ExecMode> mode;  // hello or query override
  std::string goal;          // query
  std::string sql;           // sql
  std::string fact;          // assert / retract
  int64_t deadline_ms = -1;  // query; -1 = server default
  bool want_proofs = false;  // query (operational modes only)
  bool want_trace = false;   // query: attach the per-stage span tree
  uint64_t min_seqno = 0;    // query: bounded-staleness floor; 0 = any
  int64_t wait_ms = 0;       // query: how long to wait for min_seqno
  uint64_t from_seqno = 0;   // replicate: resume after this seqno
};

/// Validates the JSON shape of a request (presence and types of the
/// members each command requires). Lattice-dependent checks (does the
/// level exist?) happen in the server, which owns the engine.
Result<Request> ParseRequest(const Json& json);

/// Wire names for ExecMode: "operational", "reduced", "check_both"
/// (aliases "op", "red", "both", "check" are accepted on input).
Result<ml::ExecMode> ParseExecMode(std::string_view name);
const char* ExecModeName(ml::ExecMode mode);

/// Parses a TCP port for the CLI tools: the text must be all digits
/// and in [1, 65535]. Rejects what `atoi` silently mangles - empty
/// strings, trailing junk ("80x"), negatives, and values past 65535
/// that a uint16_t cast would wrap ("70000" -> 4464). The daemon
/// passes `allow_ephemeral` so "--port 0" keeps its meaning of "bind
/// an OS-assigned port"; a client has nothing to connect to at 0.
Result<uint16_t> ParsePort(std::string_view text, bool allow_ephemeral = false);

/// A dialable address for the CLI tools and the router.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "HOST:PORT" or a bare "PORT" (host defaults to 127.0.0.1).
/// The port obeys ParsePort's rules; the host is not resolved here
/// (Client::Connect validates it when dialing).
Result<Endpoint> ParseHostPort(std::string_view text);

/// Parses a comma-separated endpoint list, e.g.
/// "7101,127.0.0.1:7102,localhost:7103". Empty elements and an empty
/// list are rejected. This is the spelling of `multilogd --shards` and
/// `multilog_client --connect`.
Result<std::vector<Endpoint>> ParseEndpointList(std::string_view text);

/// {"ok":false,"code":...,"error":...} from a non-OK status.
Json ErrorResponse(const Status& status);

/// {"ok":true} ready for command-specific members.
Json OkResponse();

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_PROTOCOL_H_
