#ifndef MULTILOG_SERVER_CLIENT_H_
#define MULTILOG_SERVER_CLIENT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "server/protocol.h"

namespace multilog::server {

/// A minimal blocking multilogd client: one TCP connection, strict
/// request/response. Shared by the CLI, the load generator, and the
/// integration tests (which is the point - they all exercise the same
/// wire path).
///
/// Not thread-safe: one Client per thread.
class Client {
 public:
  /// Connects to 127.0.0.1:`port` (multilogd binds loopback only).
  static Result<Client> Connect(uint16_t port);

  /// Connects to `host`:`port`. `host` must be an IPv4 dotted quad or
  /// "localhost" - multilogd binds loopback only today, so this exists
  /// for the HOST:PORT spelling of --replica-of and stays deliberately
  /// resolver-free (no DNS in the hot reconnect path).
  static Result<Client> Connect(const std::string& host, uint16_t port);

  /// Connect with retries: `attempts` tries, sleeping `backoff_ms`
  /// between failures with exponential growth (capped at 2s). One
  /// attempt with zero backoff is plain Connect. Replaces the
  /// hand-rolled "sleep 0.3 and hope" loops in scripts that race a
  /// freshly spawned daemon's bind.
  static Result<Client> ConnectWithRetry(const std::string& host,
                                         uint16_t port, int attempts,
                                         int64_t backoff_ms);

  /// Failover connect: tries each endpoint in order, once per round,
  /// for `attempts` rounds (so a comma-separated --connect list keeps
  /// working when its first entry is down). Sleeps `backoff_ms` between
  /// rounds with the same exponential growth as ConnectWithRetry;
  /// returns the last failure when every round exhausts the list.
  static Result<Client> ConnectAnyWithRetry(
      const std::vector<Endpoint>& endpoints, int attempts,
      int64_t backoff_ms);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one frame and reads one response frame, parsed as JSON.
  /// Protocol-level errors from the server come back as an OK Result
  /// whose JSON has "ok":false - the caller decides whether that is
  /// fatal. A transport failure (connection closed, bad frame) is a
  /// non-OK Result.
  Result<Json> RoundTrip(const Json& request);

  /// Convenience wrappers building the request JSON. Each fails (non-OK
  /// Result) if the server's response has "ok":false, returning the
  /// server's code/error as the Status.
  Result<Json> Hello(const std::string& level, std::string_view mode = "");
  /// `trace` asks the server to attach the per-stage span tree to the
  /// response (its "trace" member). `min_seqno` > 0 makes the server
  /// wait up to `wait_ms` for its applied seqno to reach it before
  /// running the query (read-your-writes against a replica).
  Result<Json> Query(const std::string& goal, int64_t deadline_ms = -1,
                     std::string_view mode = "", bool proofs = false,
                     bool trace = false, uint64_t min_seqno = 0,
                     int64_t wait_ms = 0);
  Result<Json> Sql(const std::string& sql);
  Result<Json> Assert(const std::string& fact);
  Result<Json> Retract(const std::string& fact);
  Result<Json> Checkpoint();
  Result<Json> Stats();
  /// The Prometheus text exposition (the `metrics` command's "body").
  Result<std::string> Metrics();
  Result<Json> Ping();
  /// The router's versioned shard map (the `shardmap` command). A plain
  /// engine daemon refuses this with InvalidArgument.
  Result<Json> ShardMap();
  Status Bye();

  // -- pipelining --
  //
  // The server lets a session keep several `id`-tagged requests in
  // flight and answers them possibly out of order (each response
  // echoes the tag). These split RoundTrip into its halves: issue
  // SendQuery/SendAssert as fast as the socket takes them, then match
  // ReadResponse results back by their "id". The blocking wrappers
  // above still work on the same connection as long as nothing is in
  // flight when they run.

  /// Sends one id-tagged query without waiting for the response.
  Status SendQuery(int64_t id, const std::string& goal,
                   int64_t deadline_ms = -1, std::string_view mode = "");
  /// Sends one id-tagged assert without waiting for the response.
  Status SendAssert(int64_t id, const std::string& fact);
  /// Reads the next response frame, whatever request it answers. The
  /// caller dispatches on its "id"; "ok":false responses are returned
  /// as-is (transport failures are non-OK Results).
  Result<Json> ReadResponse();

  /// Sends raw bytes as one frame, no JSON involved - the robustness
  /// tests use this to inject malformed payloads.
  Status SendRaw(std::string_view payload);
  /// Reads one response frame (empty Result error on EOF).
  Result<std::string> ReadRaw();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// RoundTrip + turn "ok":false into the corresponding error Status.
  Result<Json> Call(const Json& request);

  int fd_ = -1;
};

/// Rebuilds a Status from the wire's {"code","error"} pair so callers
/// can keep using IsDeadlineExceeded(), IsUnavailable() etc. across the
/// network hop. Unknown codes degrade to kInternal.
Status StatusFromWire(const Json& response);

/// One failed line of a batch run: where it failed and why.
struct BatchFailure {
  size_t lineno = 0;  // 1-based line in the batch input
  Status status;
};

/// What a batch run did. The batch succeeded iff `failures` is empty.
struct BatchResult {
  size_t applied = 0;  // lines that executed successfully
  size_t writes = 0;   // applied asserts + retracts
  /// Cache levels the server maintained in place (delta propagation)
  /// and levels it dropped for recompute, summed over the batch's
  /// writes - the incremental-vs-invalidate split of the run.
  size_t levels_maintained = 0;
  size_t levels_invalidated = 0;
  double wall_ms = 0.0;  // client-side wall time for the whole batch
  std::vector<BatchFailure> failures;
};

/// Runs a batch over the open (hello'd) connection. Each non-empty line
/// of `input` is `assert FACT`, `retract FACT`, `checkpoint`, or
/// `query GOAL`; '%' and '#' start comments. A malformed or rejected
/// line stops the batch at that line - unless `keep_going`, which
/// records the failure (with its line number) and continues, so one
/// bad write doesn't hide the rest of a staging file. When `echo` is
/// non-null every successful line's response is written to it as
/// `<lineno>: <response JSON>`.
BatchResult RunBatch(Client& client, std::istream& input,
                     bool keep_going = false, std::ostream* echo = nullptr);

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_CLIENT_H_
