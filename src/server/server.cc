#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/cancel.h"
#include "msql/executor.h"
#include "multilog/proof.h"
#include "replication/log_shipper.h"

namespace multilog::server {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// size_t decrement-on-exit for the in-flight admission counter.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<size_t>* counter) : counter_(counter) {}
  ~InFlightGuard() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<size_t>* counter_;
};

/// One span-tree node as response JSON: stage name, start offset, and
/// duration in µs, with nested children.
Json TraceNodeJson(const trace::SpanNode& node) {
  Json j = Json::Object();
  j.Set("stage", Json::Str(trace::StageName(node.stage)));
  j.Set("start_us", Json::Int(static_cast<int64_t>(node.start_micros)));
  j.Set("dur_us", Json::Int(static_cast<int64_t>(node.duration_micros)));
  if (!node.children.empty()) {
    Json children = Json::Array();
    for (const trace::SpanNode& child : node.children) {
      children.Push(TraceNodeJson(child));
    }
    j.Set("children", std::move(children));
  }
  return j;
}

/// The leaf span with the largest duration - where the request actually
/// spent its time (inner spans carry the exclusive cost). nullptr when
/// the tree is only its root.
const trace::SpanNode* DominantSpan(const trace::SpanNode& root) {
  const trace::SpanNode* best = nullptr;
  std::vector<const trace::SpanNode*> stack;
  for (const trace::SpanNode& child : root.children) stack.push_back(&child);
  while (!stack.empty()) {
    const trace::SpanNode* node = stack.back();
    stack.pop_back();
    if (node->children.empty()) {
      if (best == nullptr || node->duration_micros > best->duration_micros) {
        best = node;
      }
    }
    for (const trace::SpanNode& child : node->children) {
      stack.push_back(&child);
    }
  }
  return best;
}

/// `<decimal byte count>\n<payload>` - the same frame WriteFrame emits,
/// built as a string so the loop can buffer it for a nonblocking
/// socket.
std::string EncodeFrame(std::string_view payload) {
  std::string frame = std::to_string(payload.size());
  frame.push_back('\n');
  frame.append(payload);
  return frame;
}

/// The seed server's bounded-staleness failure message, verbatim - the
/// event loop reports it from the parking path now, but clients (and
/// tests) match on the text.
Json MinSeqnoError(uint64_t applied, const Request& req) {
  return ErrorResponse(Status::DeadlineExceeded(
      "applied seqno " + std::to_string(applied) +
      " has not reached min_seqno " + std::to_string(req.min_seqno) +
      " within wait_ms=" + std::to_string(req.wait_ms)));
}

constexpr uint32_t kReadEvents = EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP;

}  // namespace

struct Server::SqlHandle {
  /// msql::Session is stateful; pipelined statements serialize here.
  std::mutex mu;
  msql::Session session;
  explicit SqlHandle(const mls::BeliefModeRegistry* registry)
      : session(registry) {}
};

struct Server::ParkedQuery {
  Request req;
  std::chrono::steady_clock::time_point give_up;
  trace::Collector::Clock::time_point t_read;
  trace::Collector::Clock::time_point t_parsed;
};

struct Server::Session {
  explicit Session(size_t max_request_bytes) : decoder(max_request_bytes) {}

  int fd = -1;
  /// Monotonic across all sessions; completions carry it so a response
  /// for a dead session never lands on the fd's next owner.
  uint64_t gen = 0;
  FrameDecoder decoder;

  /// Undelivered response bytes: [wbuf_off, wbuf.size()) is pending.
  std::string wbuf;
  size_t wbuf_off = 0;

  bool hello_done = false;
  std::string level;
  ml::ExecMode mode = ml::ExecMode::kReduced;
  std::shared_ptr<SqlHandle> sql;

  /// Requests dispatched to the pool whose completions haven't been
  /// consumed yet (includes stats/metrics; ordered commands wait on it).
  size_t in_flight = 0;
  std::vector<ParkedQuery> parked;

  /// EOF or read error observed. The session lingers until in-flight
  /// work and parked queries resolve, so their responses are still
  /// attempted (and failures counted) - then it closes.
  bool peer_gone = false;
  /// Close as soon as in-flight work drains and wbuf flushes.
  bool closing = false;
  /// Read backpressure: wbuf exceeded the cap; EPOLLIN is off.
  bool reading_paused = false;
  /// BYE or replicate waiting for the session to drain (ordered).
  std::optional<Request> deferred;

  bool in_epoll = false;
  uint32_t epoll_events = 0;
};

struct Server::Task {
  int fd = -1;
  uint64_t gen = 0;
  Request req;
  /// Session snapshot at dispatch: the task outlives the session if the
  /// peer disconnects mid-query.
  std::string level;
  ml::ExecMode session_mode = ml::ExecMode::kReduced;
  std::shared_ptr<SqlHandle> sql;
  trace::Collector::Clock::time_point t_read;
  trace::Collector::Clock::time_point t_parsed;
  /// Whether this task holds one of the max_in_flight slots.
  bool admitted = false;
};

Server::Server(ml::Engine* engine, ServerOptions options,
               std::vector<SqlCatalogEntry> catalog,
               const mls::BeliefModeRegistry* belief_registry)
    : engine_(engine),
      options_(options),
      catalog_(std::move(catalog)),
      belief_registry_(belief_registry),
      metrics_(engine->lattice().TopologicalOrder()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 512) < 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // The loop accepts in a drain-until-EAGAIN burst, so the listener
  // must never block it.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status s = Status::Internal(std::string("epoll/eventfd: ") +
                                      std::strerror(errno));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  stopping_.store(false);
  draining_ = false;
  loop_thread_ = std::thread(&Server::LoopMain, this);
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Replication streams: ServeReplication polls stopping_, and the
  // shutdown unblocks any write it is sitting in right now.
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    for (const auto& stream : streams_) {
      if (stream->fd >= 0) ::shutdown(stream->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    for (const auto& stream : streams_) {
      if (stream->thread.joinable()) stream->thread.join();
      if (stream->fd >= 0) ::close(stream->fd);
    }
    streams_.clear();
  }
  // Workers may still be finishing force-abandoned tasks; joining the
  // pool before closing wake_fd_ keeps their completion wake-ups safe.
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  started_ = false;
}

void Server::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void Server::LoopMain() {
  std::array<epoll_event, 64> events;
  while (true) {
    if (stopping_.load(std::memory_order_relaxed) && !draining_) {
      BeginDrain();
    }
    if (draining_) {
      if (sessions_.empty()) break;
      if (std::chrono::steady_clock::now() >= drain_deadline_) {
        // The bounded drain expired: force-close what's left. Their
        // in-flight completions are dropped by the generation check.
        std::vector<int> fds;
        fds.reserve(sessions_.size());
        for (const auto& entry : sessions_) fds.push_back(entry.first);
        for (const int fd : fds) {
          auto it = sessions_.find(fd);
          if (it != sessions_.end()) CloseSession(it->second.get());
        }
        break;
      }
    }
    // Parked min_seqno waiters need a poll tick (replication applies
    // land off-loop); a drain needs one to watch its deadline.
    const int timeout_ms = draining_ ? 5 : (parked_fds_.empty() ? -1 : 1);
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself broke; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      HandleEvent(fd, events[i].events);
    }
    DrainCompletions();
    CheckParked();
  }
}

void Server::BeginDrain() {
  draining_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_deadline_ms);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);  // also removes it from the epoll set
    listen_fd_ = -1;
  }
  std::vector<int> fds;
  fds.reserve(sessions_.size());
  for (const auto& entry : sessions_) fds.push_back(entry.first);
  for (const int fd : fds) {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    Session* s = it->second.get();
    // Parked queries will never see their seqno now; fail them the way
    // an expired wait would.
    bool alive = true;
    while (alive && !s->parked.empty()) {
      ParkedQuery parked = std::move(s->parked.back());
      s->parked.pop_back();
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      alive = QueueResponse(s, MinSeqnoError(engine_->AppliedSeqno(),
                                             parked.req),
                            parked.req.id);
    }
    if (!alive) continue;
    UpdateEpoll(s);  // draining_ drops EPOLLIN: no new requests
    MaybeClose(s);
  }
  parked_fds_.clear();
}

void Server::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: burst drained (or listener gone)
    }
    {
      std::lock_guard<std::mutex> lock(streams_mu_);
      ReapStreamsLocked();
    }
    if (metrics_.connections_open.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      metrics_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      // Best effort on a nonblocking socket: a rejected peer that never
      // reads cannot stall the accept path (the seed's blocking
      // WriteFrame here could wedge every later accept).
      const std::string frame =
          EncodeFrame(ErrorResponse(Status::ResourceExhausted(
                                        "server at connection limit"))
                          .Serialize());
      [[maybe_unused]] const ssize_t sent =
          ::send(fd, frame.data(), frame.size(),
                 MSG_DONTWAIT | MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_open.fetch_add(1, std::memory_order_relaxed);
    // Responses are small frames; without TCP_NODELAY a pipelined
    // client's answers sit in Nagle's buffer waiting for delayed ACKs.
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto session = std::make_unique<Session>(options_.max_request_bytes);
    session->fd = fd;
    session->gen = next_session_gen_++;
    session->mode = options_.default_mode;
    Session* s = session.get();
    sessions_[fd] = std::move(session);
    epoll_event ev{};
    ev.events = kReadEvents;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseSession(s);
      continue;
    }
    s->in_epoll = true;
    s->epoll_events = kReadEvents;
  }
}

void Server::HandleEvent(int fd, uint32_t events) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session* s = it->second.get();
  if ((events & EPOLLOUT) != 0) {
    if (!FlushSession(s)) return;
    if (!ResumeReading(s)) return;
    UpdateEpoll(s);
    if (!MaybeClose(s)) return;
  }
  if ((events & kReadEvents) != 0) HandleReadable(s);
}

void Server::HandleReadable(Session* s) {
  char buf[65536];
  while (!s->peer_gone && !s->reading_paused && !s->closing &&
         !s->deferred.has_value() && !draining_) {
    const ssize_t n = ::recv(s->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      s->decoder.Feed(buf, static_cast<size_t>(n));
      if (!ProcessFrames(s)) return;
      continue;
    }
    if (n == 0) {
      s->peer_gone = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    s->peer_gone = true;  // hard read error: treat like an abrupt close
    break;
  }
  if (s->peer_gone) {
    // A half-closing pipeliner may have sent its whole batch plus FIN;
    // everything completely framed still executes and answers.
    if (!ProcessFrames(s)) return;
    if (s->decoder.mid_frame()) {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
      if (!QueueResponse(s, ErrorResponse(s->decoder.OnEof()), std::nullopt)) {
        return;
      }
    }
  }
  UpdateEpoll(s);
  MaybeClose(s);
}

bool Server::ProcessFrames(Session* s) {
  while (!s->deferred.has_value() && !s->closing && !s->reading_paused) {
    Result<std::optional<std::string>> next = s->decoder.Next();
    if (!next.ok()) {
      // Framing damage: the byte stream can't be resynchronized. Tell
      // the peer why (best effort) and close - buffered or in-flight
      // responses are forfeit, exactly like the seed's immediate close.
      if (next.status().IsResourceExhausted()) {
        metrics_.rejected_oversized.fetch_add(1, std::memory_order_relaxed);
      } else {
        metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
      }
      if (!QueueResponse(s, ErrorResponse(next.status()), std::nullopt)) {
        return false;
      }
      CloseSession(s);
      return false;
    }
    if (!next->has_value()) return true;  // need more bytes
    metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
    if (!ProcessPayload(s, std::move(**next))) return false;
  }
  return true;
}

bool Server::ProcessPayload(Session* s, std::string payload) {
  // Epoch for a traced request: the instant its frame was reassembled.
  const auto t_read = trace::Collector::Clock::now();

  // Payload-tier problems keep the connection open: framing is intact,
  // so the peer can recover by sending a corrected request.
  Result<Json> json = Json::Parse(payload);
  if (!json.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return QueueResponse(s, ErrorResponse(json.status()), std::nullopt);
  }
  // Even a rejected request gets its error on the right pipeline tag.
  const std::optional<int64_t> id = ExtractRequestId(*json);
  Result<Request> parsed = ParseRequest(*json);
  if (!parsed.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return QueueResponse(s, ErrorResponse(parsed.status()), id);
  }
  Request req = std::move(*parsed);
  const auto t_parsed = trace::Collector::Clock::now();

  switch (req.cmd) {
    case Request::Cmd::kPing: {
      Json resp = OkResponse();
      resp.Set("pong", Json::Bool(true));
      return QueueResponse(s, std::move(resp), req.id);
    }
    case Request::Cmd::kStats:
    case Request::Cmd::kMetrics: {
      // Off-loop (their handlers take engine locks) but exempt from the
      // in-flight cap, as in the seed server: observability must work
      // on an overloaded server.
      s->in_flight += 1;
      DispatchTask(s, std::move(req), t_read, t_parsed, /*admitted=*/false);
      return true;
    }
    case Request::Cmd::kHello: {
      if (s->hello_done) {
        return QueueResponse(
            s,
            ErrorResponse(Status::InvalidArgument(
                "session is already bound; reconnect to change clearance")),
            req.id);
      }
      if (!engine_->lattice().Contains(req.level)) {
        return QueueResponse(s,
                             ErrorResponse(Status::SecurityViolation(
                                 "unknown clearance level '" + req.level +
                                 "'")),
                             req.id);
      }
      s->hello_done = true;
      s->level = req.level;
      if (req.mode.has_value()) s->mode = *req.mode;
      if (!catalog_.empty()) {
        s->sql = std::make_shared<SqlHandle>(belief_registry_);
        for (const SqlCatalogEntry& entry : catalog_) {
          s->sql->session.RegisterRelation(entry.name, entry.relation);
        }
        s->sql->session.SetUserContext(s->level);
        s->sql->session.LockUserContext();
      }
      Json resp = OkResponse();
      resp.Set("server", Json::Str("multilogd"));
      resp.Set("level", Json::Str(s->level));
      resp.Set("mode", Json::Str(ExecModeName(s->mode)));
      resp.Set("sql", Json::Bool(s->sql != nullptr));
      return QueueResponse(s, std::move(resp), req.id);
    }
    case Request::Cmd::kShardMap: {
      return QueueResponse(
          s,
          ErrorResponse(Status::InvalidArgument(
              "this daemon is not a router; 'shardmap' is served by "
              "multilogd --router")),
          req.id);
    }
    case Request::Cmd::kBye:
    case Request::Cmd::kReplicate: {
      // Ordered commands: defer until every in-flight and parked
      // request on this session has answered, and stop reading - they
      // are by definition the session's last exchange.
      s->deferred = std::move(req);
      UpdateEpoll(s);
      return MaybeClose(s);
    }
    case Request::Cmd::kQuery:
    case Request::Cmd::kSql:
    case Request::Cmd::kAssert:
    case Request::Cmd::kRetract:
    case Request::Cmd::kCheckpoint: {
      if (options_.read_only && req.cmd != Request::Cmd::kQuery &&
          req.cmd != Request::Cmd::kSql) {
        metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
        return QueueResponse(s,
                             ErrorResponse(Status::ReadOnly(
                                 "this daemon is a read-only replica; send "
                                 "writes to the primary")),
                             req.id);
      }
      if (!s->hello_done) {
        return QueueResponse(
            s,
            ErrorResponse(Status::SecurityViolation(
                "session has no clearance yet; send hello first")),
            req.id);
      }
      // Bounded staleness: park on the loop until the applied seqno
      // catches up. A parked query holds no worker and no in-flight
      // slot (the seed burned both in a sleep loop), so queries with
      // satisfied floors keep flowing around it.
      if (req.cmd == Request::Cmd::kQuery && req.min_seqno > 0 &&
          engine_->AppliedSeqno() < req.min_seqno) {
        if (req.wait_ms <= 0) {
          metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          return QueueResponse(
              s, MinSeqnoError(engine_->AppliedSeqno(), req), req.id);
        }
        const auto give_up = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(req.wait_ms);
        s->parked.push_back(
            ParkedQuery{std::move(req), give_up, t_read, t_parsed});
        parked_fds_.insert(s->fd);
        return true;
      }
      // Admission control on the shared pool: fail fast instead of
      // queueing unboundedly behind slow queries. Writes count against
      // the same budget - a mutation holds the engine's database lock,
      // so letting unbounded writes queue would starve readers just as
      // surely as unbounded queries would.
      if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
          options_.max_in_flight) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
        return QueueResponse(s,
                             ErrorResponse(Status::ResourceExhausted(
                                 "server overloaded: too many queries in "
                                 "flight")),
                             req.id);
      }
      s->in_flight += 1;
      DispatchTask(s, std::move(req), t_read, t_parsed, /*admitted=*/true);
      return true;
    }
  }
  return true;
}

void Server::DispatchTask(Session* s, Request req,
                          trace::Collector::Clock::time_point t_read,
                          trace::Collector::Clock::time_point t_parsed,
                          bool admitted) {
  auto task = std::make_shared<Task>();
  task->fd = s->fd;
  task->gen = s->gen;
  task->req = std::move(req);
  task->level = s->level;
  task->session_mode = s->mode;
  task->sql = s->sql;
  task->t_read = t_read;
  task->t_parsed = t_parsed;
  task->admitted = admitted;
  const auto t_submit = trace::Collector::Clock::now();
  pool_->Submit([this, task, t_submit] { RunTask(task, t_submit); });
}

void Server::RunTask(const std::shared_ptr<Task>& task,
                     trace::Collector::Clock::time_point t_submit) {
  // The admitted slot unwinds on every exit path, including a handler
  // or serialization exception.
  std::optional<InFlightGuard> slot;
  if (task->admitted) slot.emplace(&in_flight_);

  const Request& req = task->req;
  // A collector rides along when the client asked for a trace or the
  // slow-query log needs a span tree to attribute time.
  std::optional<trace::Collector> collector;
  if (req.cmd == Request::Cmd::kQuery &&
      (req.want_trace || options_.slow_query_ms >= 0)) {
    collector.emplace(task->t_read);
    collector->AddLeaf(trace::Stage::kParse, task->t_read, task->t_parsed);
    collector->AddLeaf(trace::Stage::kQueueWait, t_submit,
                       trace::Collector::Clock::now());
  }
  Json resp;
  {
    trace::ScopedCollector install(collector.has_value() ? &*collector
                                                         : nullptr);
    try {
      switch (req.cmd) {
        case Request::Cmd::kQuery:
          resp = HandleQuery(*task);
          break;
        case Request::Cmd::kSql:
          resp = HandleSql(*task);
          break;
        case Request::Cmd::kStats: {
          resp = OkResponse();
          resp.Set("stats", StatsJson());
          break;
        }
        case Request::Cmd::kMetrics: {
          resp = OkResponse();
          resp.Set("format", Json::Str("prometheus"));
          resp.Set("body", Json::Str(MetricsText()));
          break;
        }
        default:
          resp = HandleWrite(*task);
          break;
      }
    } catch (const std::exception& e) {
      // A handler exception must not kill the worker, and the client
      // still deserves an answer.
      resp = ErrorResponse(Status::Internal(
          std::string("handler raised an exception: ") + e.what()));
    } catch (...) {
      resp = ErrorResponse(
          Status::Internal("handler raised an unknown exception"));
    }
  }
  // Close the root when the work ends: completion-queue latency back to
  // the loop is scheduler noise, not query time.
  const auto t_done = trace::Collector::Clock::now();
  if (collector.has_value()) {
    const trace::SpanNode root = collector->Finish(t_done);
    if (req.want_trace) {
      Json tj = TraceNodeJson(root);
      if (collector->dropped_spans() > 0) {
        tj.Set("dropped_spans",
               Json::Int(static_cast<int64_t>(collector->dropped_spans())));
      }
      resp.Set("trace", std::move(tj));
    }
    if (options_.slow_query_ms >= 0 &&
        root.duration_micros >=
            static_cast<uint64_t>(options_.slow_query_ms) * 1000) {
      LogSlowQuery(*task, root);
    }
  }
  if (req.id.has_value()) resp.Set("id", Json::Int(*req.id));
  // Release the admission slot BEFORE the response becomes visible: a
  // client that sees this answer and immediately sends its next request
  // must not bounce off a slot the finished query still pins.
  slot.reset();
  PostCompletion(task->fd, task->gen, EncodeFrame(resp.Serialize()));
}

void Server::PostCompletion(int fd, uint64_t gen, std::string frame) {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    was_empty = completions_.empty();
    completions_.push_back(Completion{fd, gen, std::move(frame)});
  }
  // One wake covers every completion queued before the loop's next
  // drain; only the empty -> non-empty transition needs the eventfd
  // write. A group-commit cohort finishing together costs one syscall,
  // not one per commit.
  if (was_empty) WakeLoop();
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    batch.swap(completions_);
  }
  // Stage every completion into its session's write buffer first, then
  // flush each touched session once: a pipelined burst completing
  // together leaves in one send() instead of one per response.
  std::vector<int> touched;
  for (Completion& c : batch) {
    auto it = sessions_.find(c.fd);
    if (it == sessions_.end() || it->second->gen != c.gen) {
      continue;  // session died first; the response has no one to go to
    }
    Session* s = it->second.get();
    s->in_flight -= 1;
    if (s->wbuf_off >= s->wbuf.size()) {
      s->wbuf.clear();
      s->wbuf_off = 0;
    }
    if (std::find(touched.begin(), touched.end(), c.fd) == touched.end()) {
      touched.push_back(c.fd);
    }
    s->wbuf.append(c.payload);
  }
  for (const int fd : touched) {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    Session* s = it->second.get();
    if (!FlushSession(s)) continue;
    if (!s->reading_paused &&
        s->wbuf.size() - s->wbuf_off > options_.max_session_write_buffer) {
      s->reading_paused = true;
    }
    UpdateEpoll(s);
    if (!ResumeReading(s)) continue;
    MaybeClose(s);
  }
}

void Server::CheckParked() {
  if (parked_fds_.empty()) return;
  const uint64_t applied = engine_->AppliedSeqno();
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> fds(parked_fds_.begin(), parked_fds_.end());
  for (const int fd : fds) {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) {
      parked_fds_.erase(fd);
      continue;
    }
    Session* s = it->second.get();
    bool alive = true;
    for (auto pit = s->parked.begin(); alive && pit != s->parked.end();) {
      if (applied >= pit->req.min_seqno) {
        // Caught up - but an unparked query still needs an admission
        // slot; when the server is saturated it stays parked and
        // retries next tick rather than bouncing with an overload
        // error it never risked when it arrived.
        if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
            options_.max_in_flight) {
          in_flight_.fetch_sub(1, std::memory_order_acq_rel);
          ++pit;
          continue;
        }
        ParkedQuery parked = std::move(*pit);
        pit = s->parked.erase(pit);
        s->in_flight += 1;
        DispatchTask(s, std::move(parked.req), parked.t_read,
                     parked.t_parsed, /*admitted=*/true);
      } else if (now >= pit->give_up) {
        ParkedQuery parked = std::move(*pit);
        pit = s->parked.erase(pit);
        metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        alive = QueueResponse(s, MinSeqnoError(applied, parked.req),
                              parked.req.id);
      } else {
        ++pit;
      }
    }
    if (!alive) {
      parked_fds_.erase(fd);
      continue;
    }
    if (s->parked.empty()) parked_fds_.erase(fd);
    MaybeClose(s);
  }
}

bool Server::QueueResponse(Session* s, Json response,
                           const std::optional<int64_t>& id) {
  if (id.has_value()) response.Set("id", Json::Int(*id));
  return DeliverFrame(s, EncodeFrame(response.Serialize()));
}

bool Server::DeliverFrame(Session* s, std::string frame) {
  if (s->wbuf_off >= s->wbuf.size()) {
    s->wbuf.clear();
    s->wbuf_off = 0;
  }
  s->wbuf.append(frame);
  if (!FlushSession(s)) return false;
  if (!s->reading_paused &&
      s->wbuf.size() - s->wbuf_off > options_.max_session_write_buffer) {
    // The peer pipelines requests faster than it reads responses: stop
    // reading until it drains, bounding per-session memory.
    s->reading_paused = true;
  }
  UpdateEpoll(s);
  return true;
}

bool Server::FlushSession(Session* s) {
  while (s->wbuf_off < s->wbuf.size()) {
    const ssize_t n =
        ::send(s->fd, s->wbuf.data() + s->wbuf_off,
               s->wbuf.size() - s->wbuf_off, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      s->wbuf_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // socket full; EPOLLOUT (via UpdateEpoll) resumes
    }
    // The peer is gone or the socket broke: the response cannot be
    // delivered. Count it and close - a peer that can't take responses
    // must not keep submitting work.
    metrics_.response_write_errors.fetch_add(1, std::memory_order_relaxed);
    CloseSession(s);
    return false;
  }
  s->wbuf.clear();
  s->wbuf_off = 0;
  return true;
}

bool Server::ResumeReading(Session* s) {
  if (!s->reading_paused) return true;
  if (s->wbuf.size() - s->wbuf_off >
      options_.max_session_write_buffer / 2) {
    return true;
  }
  s->reading_paused = false;
  if (!ProcessFrames(s)) return false;
  UpdateEpoll(s);
  return true;
}

void Server::UpdateEpoll(Session* s) {
  uint32_t want = 0;
  if (!s->peer_gone && !s->closing && !s->reading_paused &&
      !s->deferred.has_value() && !draining_) {
    want |= kReadEvents;
  }
  if (s->wbuf_off < s->wbuf.size()) want |= EPOLLOUT;
  if (want == s->epoll_events && (want != 0) == s->in_epoll) return;
  if (want == 0) {
    // Deregister entirely: EPOLLHUP/ERR are reported regardless of the
    // requested mask, so a lingering peer-gone session would otherwise
    // spin the level-triggered loop.
    if (s->in_epoll) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s->fd, nullptr);
    s->in_epoll = false;
  } else {
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = s->fd;
    ::epoll_ctl(epoll_fd_, s->in_epoll ? EPOLL_CTL_MOD : EPOLL_CTL_ADD,
                s->fd, &ev);
    s->in_epoll = true;
  }
  s->epoll_events = want;
}

bool Server::MaybeClose(Session* s) {
  const bool drained = s->in_flight == 0 && s->parked.empty();
  const bool flushed = s->wbuf_off >= s->wbuf.size();
  if (s->deferred.has_value() && drained && flushed) {
    if (!RunDeferred(s)) return false;
  }
  if ((s->peer_gone || s->closing || draining_) && drained && flushed) {
    CloseSession(s);
    return false;
  }
  return true;
}

bool Server::RunDeferred(Session* s) {
  Request req = std::move(*s->deferred);
  s->deferred.reset();
  if (req.cmd == Request::Cmd::kBye) {
    s->closing = true;
    return QueueResponse(s, OkResponse(), req.id);
  }
  StartReplication(s, req.from_seqno);
  return false;  // the session state is gone; the fd lives on as a stream
}

void Server::StartReplication(Session* s, uint64_t from_seqno) {
  // The connection becomes a one-way stream served by a dedicated
  // thread: an open-ended stream must not occupy a pool worker (a few
  // replicas would starve every query) and its blocking writes cannot
  // run on the loop. Like stats, it needs no HELLO: the daemon binds
  // loopback only, and the replica re-enforces per-level visibility
  // for its own clients.
  const int fd = s->fd;
  if (s->in_epoll) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  parked_fds_.erase(fd);
  sessions_.erase(fd);  // frees the session state; the fd stays open
  metrics_.sessions_reaped.fetch_add(1, std::memory_order_relaxed);
  replication_streams_.fetch_add(1, std::memory_order_relaxed);
  // ServeReplication writes with blocking I/O.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);

  std::lock_guard<std::mutex> lock(streams_mu_);
  ReapStreamsLocked();
  streams_.push_back(std::make_unique<Stream>());
  Stream* stream = streams_.back().get();
  stream->fd = fd;
  stream->thread = std::thread([this, stream, from_seqno] {
    replication::ServeReplication(stream->fd, engine_, from_seqno,
                                  &stopping_);
    // The gauge drops here so admission sees it promptly; the fd is
    // closed by the reaper (after the join), never by this thread, so
    // it cannot be reused while anything could still name it.
    metrics_.connections_open.fetch_sub(1, std::memory_order_acq_rel);
    stream->done.store(true, std::memory_order_release);
  });
}

void Server::ReapStreamsLocked() {
  for (auto it = streams_.begin(); it != streams_.end();) {
    Stream* stream = it->get();
    if (!stream->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (stream->thread.joinable()) stream->thread.join();
    if (stream->fd >= 0) ::close(stream->fd);
    it = streams_.erase(it);
  }
}

void Server::CloseSession(Session* s) {
  const int fd = s->fd;
  if (s->in_epoll) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  parked_fds_.erase(fd);
  metrics_.connections_open.fetch_sub(1, std::memory_order_acq_rel);
  metrics_.sessions_reaped.fetch_add(1, std::memory_order_relaxed);
  sessions_.erase(fd);  // frees the Session - the churn-leak fix itself
}

Json Server::HandleQuery(const Task& task) {
  const Request& req = task.req;
  // Deadline precedence: the request's own deadline_ms (0 is a valid
  // "already expired" probe), else the server default, else none.
  CancelToken cancel;
  const CancelToken* cancel_ptr = nullptr;
  if (req.deadline_ms >= 0) {
    cancel.SetTimeout(std::chrono::milliseconds(req.deadline_ms));
    cancel_ptr = &cancel;
  } else if (options_.default_deadline_ms > 0) {
    cancel.SetTimeout(std::chrono::milliseconds(options_.default_deadline_ms));
    cancel_ptr = &cancel;
  }
  const ml::ExecMode mode =
      req.mode.has_value() ? *req.mode : task.session_mode;

  const auto start = std::chrono::steady_clock::now();
  Result<ml::QueryResult> result = ml::QueryResult{};
  {
    trace::Span exec_span(trace::Stage::kExecute);
    result = engine_->QuerySource(req.goal, task.level, mode, cancel_ptr);
  }
  const uint64_t micros = ElapsedMicros(start);
  metrics_.RecordQuery(task.level, static_cast<size_t>(mode), micros);

  if (!result.ok()) {
    if (result.status().IsDeadlineExceeded()) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(result.status());
  }
  metrics_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  metrics_.rows_returned.fetch_add(result->answers.size(),
                                   std::memory_order_relaxed);

  trace::Span serialize_span(trace::Stage::kSerialize);
  Json resp = OkResponse();
  resp.Set("level", Json::Str(task.level));
  resp.Set("mode", Json::Str(ExecModeName(mode)));
  Json answers = Json::Array();
  for (const datalog::Substitution& answer : result->answers) {
    answers.Push(Json::Str(answer.ToString()));
  }
  resp.Set("count", Json::Int(static_cast<int64_t>(result->answers.size())));
  resp.Set("answers", std::move(answers));
  if (req.want_proofs && !result->proofs.empty()) {
    Json proofs = Json::Array();
    for (const ml::ProofPtr& proof : result->proofs) {
      proofs.Push(Json::Str(ml::RenderProof(*proof)));
    }
    resp.Set("proofs", std::move(proofs));
  }
  resp.Set("elapsed_ms", Json::Double(static_cast<double>(micros) / 1000.0));
  return resp;
}

Json Server::HandleWrite(const Task& task) {
  const Request& req = task.req;
  const auto start = std::chrono::steady_clock::now();
  Json resp = OkResponse();
  if (req.cmd == Request::Cmd::kCheckpoint) {
    const Status s = engine_->Checkpoint();
    if (!s.ok()) {
      metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(s);
    }
    if (engine_->storage() != nullptr) {
      resp.Set("snapshot", Json::Str(engine_->storage()->snapshot_path()));
    }
  } else {
    const bool retract = req.cmd == Request::Cmd::kRetract;
    Result<ml::WriteResult> result =
        retract ? engine_->Retract(req.fact, task.level)
                : engine_->Assert(req.fact, task.level);
    if (!result.ok()) {
      metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(result.status());
    }
    resp.Set("seqno", Json::Int(static_cast<int64_t>(result->seqno)));
    Json invalidated = Json::Array();
    for (const std::string& level : result->invalidated_levels) {
      invalidated.Push(Json::Str(level));
    }
    resp.Set("invalidated_levels", std::move(invalidated));
    Json maintained = Json::Array();
    for (const std::string& level : result->maintained_levels) {
      maintained.Push(Json::Str(level));
    }
    resp.Set("maintained_levels", std::move(maintained));
    resp.Set("durable", Json::Bool(engine_->storage() != nullptr));
  }
  metrics_.writes_ok.fetch_add(1, std::memory_order_relaxed);
  resp.Set("level", Json::Str(task.level));
  resp.Set("elapsed_ms",
           Json::Double(static_cast<double>(ElapsedMicros(start)) / 1000.0));
  return resp;
}

Json Server::HandleSql(const Task& task) {
  if (task.sql == nullptr) {
    metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::InvalidArgument(
        "this server has no SQL catalog configured"));
  }
  const auto start = std::chrono::steady_clock::now();
  Result<msql::ResultSet> result = [&] {
    // Pipelined statements on one session serialize here: the
    // msql::Session is stateful, and two workers must not run it
    // concurrently.
    std::lock_guard<std::mutex> lock(task.sql->mu);
    trace::Span sql_span(trace::Stage::kSqlExecute);
    return task.sql->session.Execute(task.req.sql);
  }();
  const uint64_t micros = ElapsedMicros(start);
  metrics_.latency().Record(micros);

  if (!result.ok()) {
    metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(result.status());
  }
  metrics_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  metrics_.rows_returned.fetch_add(result->rows.size(),
                                   std::memory_order_relaxed);

  Json resp = OkResponse();
  Json columns = Json::Array();
  for (const std::string& column : result->columns) {
    columns.Push(Json::Str(column));
  }
  Json rows = Json::Array();
  for (const std::vector<std::string>& row : result->rows) {
    Json cells = Json::Array();
    for (const std::string& cell : row) cells.Push(Json::Str(cell));
    rows.Push(std::move(cells));
  }
  resp.Set("columns", std::move(columns));
  resp.Set("count", Json::Int(static_cast<int64_t>(result->rows.size())));
  resp.Set("rows", std::move(rows));
  resp.Set("elapsed_ms", Json::Double(static_cast<double>(micros) / 1000.0));
  return resp;
}

Json Server::StatsJson() {
  Json root = metrics_.ToJson();
  root.Set("in_flight",
           Json::Int(static_cast<int64_t>(
               in_flight_.load(std::memory_order_relaxed))));
  const ml::EngineCounters ec = engine_->Counters();
  Json engine = Json::Object();
  engine.Set("cache_hits", Json::Int(static_cast<int64_t>(ec.cache_hits)));
  engine.Set("cache_misses", Json::Int(static_cast<int64_t>(ec.cache_misses)));
  engine.Set("invalidation_events",
             Json::Int(static_cast<int64_t>(ec.invalidation_events)));
  engine.Set("cache_entries_invalidated",
             Json::Int(static_cast<int64_t>(ec.cache_entries_invalidated)));
  engine.Set("deltas_applied",
             Json::Int(static_cast<int64_t>(ec.deltas_applied)));
  engine.Set("fallback_recomputes",
             Json::Int(static_cast<int64_t>(ec.fallback_recomputes)));
  engine.Set("live_models", Json::Int(static_cast<int64_t>(ec.live_models)));
  engine.Set("plan_hits", Json::Int(static_cast<int64_t>(ec.plan_hits)));
  engine.Set("plan_misses", Json::Int(static_cast<int64_t>(ec.plan_misses)));
  engine.Set("magic_fallbacks",
             Json::Int(static_cast<int64_t>(ec.magic_fallbacks)));
  engine.Set("asserts_ok", Json::Int(static_cast<int64_t>(ec.asserts_ok)));
  engine.Set("retracts_ok", Json::Int(static_cast<int64_t>(ec.retracts_ok)));
  engine.Set("writes_rejected",
             Json::Int(static_cast<int64_t>(ec.writes_rejected)));
  engine.Set("checkpoints", Json::Int(static_cast<int64_t>(ec.checkpoints)));
  root.Set("engine", std::move(engine));
  const ml::StorageCounters sc = engine_->StorageStats();
  root.Set("applied_seqno", Json::Int(static_cast<int64_t>(sc.applied_seqno)));
  root.Set("read_only", Json::Bool(options_.read_only));
  if (sc.attached) {
    Json storage = Json::Object();
    storage.Set("dir", Json::Str(sc.dir));
    storage.Set("next_seqno", Json::Int(static_cast<int64_t>(sc.next_seqno)));
    storage.Set("snapshot_seqno",
                Json::Int(static_cast<int64_t>(sc.snapshot_seqno)));
    storage.Set("wal_records", Json::Int(static_cast<int64_t>(
                                   sc.wal_records)));
    storage.Set("wal_bytes", Json::Int(static_cast<int64_t>(sc.wal_bytes)));
    storage.Set("checkpoints", Json::Int(static_cast<int64_t>(
                                   sc.checkpoints)));
    storage.Set("group_syncs",
                Json::Int(static_cast<int64_t>(sc.group_syncs)));
    if (!sc.recovery_data_loss.empty()) {
      storage.Set("recovery_data_loss", Json::Str(sc.recovery_data_loss));
    }
    root.Set("storage", std::move(storage));
  }
  // Replication, from whichever side this daemon plays: streams served
  // (primary) and, on a replica, the link state the Replicator tracks.
  Json repl = Json::Object();
  repl.Set("streams_served",
           Json::Int(static_cast<int64_t>(
               replication_streams_.load(std::memory_order_relaxed))));
  if (replicator_ != nullptr) {
    const replication::Replicator::Stats rs = replicator_->GetStats();
    repl.Set("connected", Json::Bool(rs.connected));
    repl.Set("applied_seqno",
             Json::Int(static_cast<int64_t>(rs.applied_seqno)));
    repl.Set("primary_next_seqno",
             Json::Int(static_cast<int64_t>(rs.primary_next_seqno)));
    // Lag in records: how far the primary's committed tip is past what
    // this replica has applied. 0 until the first heartbeat reports the
    // primary's position.
    const uint64_t lag = rs.primary_next_seqno > rs.applied_seqno + 1
                             ? rs.primary_next_seqno - rs.applied_seqno - 1
                             : 0;
    repl.Set("lag_records", Json::Int(static_cast<int64_t>(lag)));
    repl.Set("records_applied",
             Json::Int(static_cast<int64_t>(rs.records_applied)));
    repl.Set("snapshots_installed",
             Json::Int(static_cast<int64_t>(rs.snapshots_installed)));
    repl.Set("reconnects", Json::Int(static_cast<int64_t>(rs.reconnects)));
    if (!rs.last_error.empty()) {
      repl.Set("last_error", Json::Str(rs.last_error));
    }
  }
  root.Set("replication", std::move(repl));
  return root;
}

std::string Server::MetricsText() {
  std::string out = metrics_.PrometheusText();
  auto counter = [&out](const char* name, const char* help, uint64_t value,
                        const char* type = "counter") {
    out.append("# HELP ").append(name).append(" ").append(help).append("\n");
    out.append("# TYPE ").append(name).append(" ").append(type).append("\n");
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  };
  counter("multilog_requests_in_flight",
          "Dispatched requests currently executing or queued.",
          in_flight_.load(std::memory_order_relaxed), "gauge");

  const ml::EngineCounters ec = engine_->Counters();
  counter("multilog_engine_cache_hits_total",
          "Per-level cache lookups that hit.", ec.cache_hits);
  counter("multilog_engine_cache_misses_total",
          "Per-level cache lookups that had to build.", ec.cache_misses);
  counter("multilog_engine_invalidation_events_total", "Committed writes.",
          ec.invalidation_events);
  counter("multilog_engine_cache_entries_invalidated_total",
          "Cache entries dropped by committed writes.",
          ec.cache_entries_invalidated);
  counter("multilog_engine_asserts_ok_total", "Asserts committed.",
          ec.asserts_ok);
  counter("multilog_engine_retracts_ok_total", "Retracts committed.",
          ec.retracts_ok);
  counter("multilog_engine_writes_rejected_total",
          "Mutations rejected by security or integrity checks.",
          ec.writes_rejected);
  counter("multilog_engine_checkpoints_total", "Checkpoints taken.",
          ec.checkpoints);
  counter("multilog_engine_deltas_applied_total",
          "Cached models maintained in place by delta propagation.",
          ec.deltas_applied);
  counter("multilog_engine_fallback_recomputes_total",
          "Incremental maintenance fallbacks to full recompute.",
          ec.fallback_recomputes);
  counter("multilog_engine_live_models", "Maintained per-level models.",
          ec.live_models, "gauge");
  counter("multilog_engine_plan_hits_total",
          "Compiled magic plans served from the plan cache.", ec.plan_hits);
  counter("multilog_engine_plan_misses_total",
          "Magic plan compiles (first query of a binding pattern).",
          ec.plan_misses);
  counter("multilog_engine_magic_fallbacks_total",
          "Queries the magic path declined to the full bottom-up path.",
          ec.magic_fallbacks);

  const ml::StorageCounters sc = engine_->StorageStats();
  counter("multilog_applied_seqno",
          "Last mutation sequence number applied to the database.",
          sc.applied_seqno, "gauge");
  if (sc.attached) {
    counter("multilog_storage_next_seqno", "Next mutation sequence number.",
            sc.next_seqno, "gauge");
    counter("multilog_storage_snapshot_seqno",
            "Sequence number the on-disk snapshot covers.",
            sc.snapshot_seqno, "gauge");
    counter("multilog_storage_wal_records",
            "Records in the live WAL segment.", sc.wal_records, "gauge");
    counter("multilog_storage_wal_bytes", "Bytes in the live WAL segment.",
            sc.wal_bytes, "gauge");
    counter("multilog_storage_checkpoints_total", "Checkpoints folded.",
            sc.checkpoints);
    counter("multilog_storage_group_syncs_total",
            "Group-commit fsync batches (each covers >= 1 append).",
            sc.group_syncs);
    counter("multilog_storage_recovery_data_loss",
            "1 when the last recovery truncated a damaged WAL tail.",
            sc.recovery_data_loss.empty() ? 0 : 1, "gauge");
  }
  counter("multilog_replication_streams_served_total",
          "Replication streams this daemon has served as the primary.",
          replication_streams_.load(std::memory_order_relaxed));
  if (replicator_ != nullptr) {
    const replication::Replicator::Stats rs = replicator_->GetStats();
    counter("multilog_replica_connected",
            "1 while the replication link to the primary is up.",
            rs.connected ? 1 : 0, "gauge");
    counter("multilog_replica_lag_records",
            "Primary mutations not yet applied on this replica.",
            rs.primary_next_seqno > rs.applied_seqno + 1
                ? rs.primary_next_seqno - rs.applied_seqno - 1
                : 0,
            "gauge");
    counter("multilog_replica_records_applied_total",
            "Shipped WAL records applied by this replica.",
            rs.records_applied);
    counter("multilog_replica_snapshots_installed_total",
            "Catch-up snapshots installed by this replica.",
            rs.snapshots_installed);
    counter("multilog_replica_reconnects_total",
            "Reconnections to the primary after the first attempt.",
            rs.reconnects);
    counter("multilog_replica_has_error",
            "1 while the link's most recent failure is unresolved (cleared "
            "on the first healthy frame after reconnect).",
            rs.last_error.empty() ? 0 : 1, "gauge");
  }

  // Per-stage trace aggregates (populated when tracing is enabled
  // globally or per-query collectors ran).
  const std::array<trace::StageTotal, trace::kNumStages> stages =
      trace::AggregatedStages();
  out.append(
      "# HELP multilog_stage_spans_total Trace spans recorded per stage.\n"
      "# TYPE multilog_stage_spans_total counter\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    out.append("multilog_stage_spans_total{stage=\"")
        .append(trace::StageName(static_cast<trace::Stage>(i)))
        .append("\"} ")
        .append(std::to_string(stages[i].count))
        .append("\n");
  }
  out.append(
      "# HELP multilog_stage_duration_seconds_total Cumulative time per "
      "stage.\n"
      "# TYPE multilog_stage_duration_seconds_total counter\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  static_cast<double>(stages[i].total_micros) / 1e6);
    out.append("multilog_stage_duration_seconds_total{stage=\"")
        .append(trace::StageName(static_cast<trace::Stage>(i)))
        .append("\"} ")
        .append(buf)
        .append("\n");
  }
  return out;
}

void Server::LogSlowQuery(const Task& task, const trace::SpanNode& root) {
  const ml::ExecMode mode =
      task.req.mode.has_value() ? *task.req.mode : task.session_mode;
  std::ostringstream line;
  line << "[multilogd] slow query: "
       << static_cast<double>(root.duration_micros) / 1000.0
       << " ms level=" << task.level << " mode=" << ExecModeName(mode);
  if (const trace::SpanNode* dominant = DominantSpan(root)) {
    line << " dominant=" << trace::StageName(dominant->stage) << ":"
         << static_cast<double>(dominant->duration_micros) / 1000.0 << "ms";
  }
  line << " goal=" << task.req.goal << "\n";
  std::ostream* sink =
      options_.slow_query_log != nullptr ? options_.slow_query_log
                                         : &std::cerr;
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  (*sink) << line.str() << std::flush;
}

}  // namespace multilog::server
