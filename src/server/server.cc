#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/cancel.h"
#include "msql/executor.h"
#include "multilog/proof.h"
#include "replication/log_shipper.h"

namespace multilog::server {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Decrements a gauge on scope exit, whatever path leaves the scope.
class GaugeGuard {
 public:
  explicit GaugeGuard(std::atomic<uint64_t>* gauge) : gauge_(gauge) {}
  ~GaugeGuard() {
    if (gauge_ != nullptr) gauge_->fetch_sub(1, std::memory_order_acq_rel);
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  std::atomic<uint64_t>* gauge_;
};

/// size_t variant for the in-flight admission counter.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<size_t>* counter) : counter_(counter) {}
  ~InFlightGuard() { counter_->fetch_sub(1, std::memory_order_acq_rel); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<size_t>* counter_;
};

/// One span-tree node as response JSON: stage name, start offset, and
/// duration in µs, with nested children.
Json TraceNodeJson(const trace::SpanNode& node) {
  Json j = Json::Object();
  j.Set("stage", Json::Str(trace::StageName(node.stage)));
  j.Set("start_us", Json::Int(static_cast<int64_t>(node.start_micros)));
  j.Set("dur_us", Json::Int(static_cast<int64_t>(node.duration_micros)));
  if (!node.children.empty()) {
    Json children = Json::Array();
    for (const trace::SpanNode& child : node.children) {
      children.Push(TraceNodeJson(child));
    }
    j.Set("children", std::move(children));
  }
  return j;
}

/// The leaf span with the largest duration - where the request actually
/// spent its time (inner spans carry the exclusive cost). nullptr when
/// the tree is only its root.
const trace::SpanNode* DominantSpan(const trace::SpanNode& root) {
  const trace::SpanNode* best = nullptr;
  std::vector<const trace::SpanNode*> stack;
  for (const trace::SpanNode& child : root.children) stack.push_back(&child);
  while (!stack.empty()) {
    const trace::SpanNode* node = stack.back();
    stack.pop_back();
    if (node->children.empty()) {
      if (best == nullptr || node->duration_micros > best->duration_micros) {
        best = node;
      }
    }
    for (const trace::SpanNode& child : node->children) {
      stack.push_back(&child);
    }
  }
  return best;
}

}  // namespace

/// Per-connection state. Lives on the reader thread's stack; only that
/// thread (and pool tasks it blocks on) ever touches it, so no locking.
struct SessionState {
  bool hello_done = false;
  std::string level;
  ml::ExecMode mode = ml::ExecMode::kReduced;
  /// Created at HELLO when the server has an SQL catalog; its user
  /// context is locked to the session level (no read-up over the wire).
  std::unique_ptr<msql::Session> sql;
};

Server::Server(ml::Engine* engine, ServerOptions options,
               std::vector<SqlCatalogEntry> catalog,
               const mls::BeliefModeRegistry* belief_registry)
    : engine_(engine),
      options_(options),
      catalog_(std::move(catalog)),
      belief_registry_(belief_registry),
      metrics_(engine->lattice().TopologicalOrder()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  stopping_.store(false);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  started_ = true;
  return Status::OK();
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // 1. No new sessions: unblock and retire the accept loop. shutdown()
  // on a listening socket is what reliably wakes a blocked accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Drain: shut down each connection's *read* side only. A reader
  // blocked in ReadFrame sees EOF and exits; a reader waiting on an
  // in-flight query still writes its response before the next read
  // observes the shutdown. Responses are never cut off.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (!conn->closed) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // conn_threads_ is only appended by the accept thread, which is
  // joined above, so iterating without the lock is safe.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  // 3. Workers are idle now (every dispatcher has returned).
  pool_.reset();
  started_ = false;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or broken) - either way we're done
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (metrics_.connections_open.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      metrics_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      WriteFrame(fd, ErrorResponse(Status::ResourceExhausted(
                         "server at connection limit"))
                         .Serialize());
      ::close(fd);
      continue;
    }
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_open.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    try {
      connections_.push_back(std::move(conn));
      conn_threads_.emplace_back(&Server::ServeConnection, this,
                                 connections_.size() - 1);
    } catch (...) {
      // The session never started (thread creation or vector growth
      // failed), so the open gauge must unwind here - ServeConnection,
      // its usual owner, will never run.
      if (!connections_.empty() && connections_.back() != nullptr &&
          connections_.back()->fd == fd) {
        connections_.pop_back();
      }
      ::close(fd);
      metrics_.connections_open.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void Server::ServeConnection(size_t conn_index) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn = connections_[conn_index].get();
  }
  // The open gauge unwinds on *every* exit from this frame, including
  // an exception escaping a handler.
  GaugeGuard open_guard(&metrics_.connections_open);
  SessionState session;
  session.mode = options_.default_mode;
  try {
    while (HandleFrame(session, conn->fd)) {
    }
  } catch (...) {
    // Drop the connection; the guards restore every counter.
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!conn->closed) {
      ::close(conn->fd);
      conn->closed = true;
    }
  }
}

bool Server::HandleFrame(SessionState& session, int fd) {
  Result<std::optional<std::string>> frame =
      ReadFrame(fd, options_.max_request_bytes);
  // Epoch for a traced request: the instant its frame finished reading.
  const auto t_read = trace::Collector::Clock::now();
  if (!frame.ok()) {
    // Framing damage: the byte stream can't be resynchronized. Tell the
    // peer why (best effort) and close.
    if (frame.status().IsResourceExhausted()) {
      metrics_.rejected_oversized.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    }
    WriteFrame(fd, ErrorResponse(frame.status()).Serialize());
    return false;
  }
  if (!frame->has_value()) return false;  // clean EOF
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);

  // Payload-tier problems keep the connection open: framing is intact,
  // so the peer can recover by sending a corrected request.
  Result<Json> json = Json::Parse(**frame);
  if (!json.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    WriteFrame(fd, ErrorResponse(json.status()).Serialize());
    return true;
  }
  Result<Request> parsed = ParseRequest(*json);
  if (!parsed.ok()) {
    metrics_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    WriteFrame(fd, ErrorResponse(parsed.status()).Serialize());
    return true;
  }
  const Request& req = *parsed;
  const auto t_parsed = trace::Collector::Clock::now();

  switch (req.cmd) {
    case Request::Cmd::kPing: {
      Json resp = OkResponse();
      resp.Set("pong", Json::Bool(true));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kBye: {
      WriteFrame(fd, OkResponse().Serialize());
      return false;
    }
    case Request::Cmd::kStats: {
      Json resp = OkResponse();
      resp.Set("stats", StatsJson());
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kMetrics: {
      Json resp = OkResponse();
      resp.Set("format", Json::Str("prometheus"));
      resp.Set("body", Json::Str(MetricsText()));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kHello: {
      if (session.hello_done) {
        WriteFrame(fd, ErrorResponse(Status::InvalidArgument(
                           "session is already bound; reconnect to change "
                           "clearance"))
                           .Serialize());
        return true;
      }
      if (!engine_->lattice().Contains(req.level)) {
        WriteFrame(fd, ErrorResponse(Status::SecurityViolation(
                           "unknown clearance level '" + req.level + "'"))
                           .Serialize());
        return true;
      }
      session.hello_done = true;
      session.level = req.level;
      if (req.mode.has_value()) session.mode = *req.mode;
      if (!catalog_.empty()) {
        session.sql = std::make_unique<msql::Session>(belief_registry_);
        for (const SqlCatalogEntry& entry : catalog_) {
          session.sql->RegisterRelation(entry.name, entry.relation);
        }
        session.sql->SetUserContext(session.level);
        session.sql->LockUserContext();
      }
      Json resp = OkResponse();
      resp.Set("server", Json::Str("multilogd"));
      resp.Set("level", Json::Str(session.level));
      resp.Set("mode", Json::Str(ExecModeName(session.mode)));
      resp.Set("sql", Json::Bool(session.sql != nullptr));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kShardMap: {
      WriteFrame(fd, ErrorResponse(Status::InvalidArgument(
                         "this daemon is not a router; 'shardmap' is served "
                         "by multilogd --router"))
                         .Serialize());
      return true;
    }
    case Request::Cmd::kReplicate: {
      // The connection becomes a one-way stream, served on this reader
      // thread (dedicating a pool worker to an open-ended stream would
      // let a few replicas starve every query). Like stats/metrics it
      // needs no HELLO: the daemon binds loopback only, and the replica
      // re-enforces per-level visibility for its own clients.
      replication_streams_.fetch_add(1, std::memory_order_relaxed);
      replication::ServeReplication(fd, engine_, req.from_seqno, &stopping_);
      return false;  // the stream is this connection's last exchange
    }
    case Request::Cmd::kQuery:
    case Request::Cmd::kSql:
    case Request::Cmd::kAssert:
    case Request::Cmd::kRetract:
    case Request::Cmd::kCheckpoint: {
      if (options_.read_only && req.cmd != Request::Cmd::kQuery &&
          req.cmd != Request::Cmd::kSql) {
        metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
        WriteFrame(fd, ErrorResponse(Status::ReadOnly(
                           "this daemon is a read-only replica; send writes "
                           "to the primary"))
                           .Serialize());
        return true;
      }
      if (!session.hello_done) {
        WriteFrame(fd, ErrorResponse(Status::SecurityViolation(
                           "session has no clearance yet; send hello first"))
                           .Serialize());
        return true;
      }
      // Admission control on the shared pool: fail fast instead of
      // queueing unboundedly behind slow queries. Writes count against
      // the same budget - a mutation holds the engine's database lock,
      // so letting unbounded writes queue would starve readers just as
      // surely as unbounded queries would.
      if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
          options_.max_in_flight) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
        WriteFrame(fd, ErrorResponse(Status::ResourceExhausted(
                           "server overloaded: too many queries in flight"))
                           .Serialize());
        return true;
      }
      // Admitted: the in-flight slot unwinds on every exit path,
      // including a dispatch or serialization exception.
      InFlightGuard in_flight_guard(&in_flight_);

      // A collector rides along when the client asked for a trace or
      // the slow-query log needs a span tree to attribute time. It
      // lives on the reader's stack; the worker fills it through the
      // thread-local installed below, and the promise/future pair
      // provides the cross-thread happens-before edges.
      std::optional<trace::Collector> collector;
      if (req.cmd == Request::Cmd::kQuery &&
          (req.want_trace || options_.slow_query_ms >= 0)) {
        collector.emplace(t_read);
        collector->AddLeaf(trace::Stage::kParse, t_read, t_parsed);
      }
      const auto t_submit = trace::Collector::Clock::now();

      // Captured by the worker just before it fulfils the promise, so
      // the root span ends when the work ends: the reader's wake-up
      // latency on the future is scheduler noise, not query time, and
      // would otherwise show up as an unattributed gap in the tree.
      auto t_done = t_submit;
      std::promise<Json> done;
      std::future<Json> future = done.get_future();
      pool_->Submit([this, &session, &req, &done, &collector, t_submit,
                     &t_done] {
        if (collector.has_value()) {
          collector->AddLeaf(trace::Stage::kQueueWait, t_submit,
                             trace::Collector::Clock::now());
        }
        trace::ScopedCollector install(collector.has_value() ? &*collector
                                                             : nullptr);
        Json resp;
        try {
          resp = req.cmd == Request::Cmd::kQuery ? HandleQuery(session, req)
                 : req.cmd == Request::Cmd::kSql ? HandleSql(session, req)
                                                 : HandleWrite(session, req);
        } catch (const std::exception& e) {
          // A handler exception must still fulfil the promise - the
          // reader is blocked on it - and must not kill the worker.
          resp = ErrorResponse(Status::Internal(
              std::string("handler raised an exception: ") + e.what()));
        } catch (...) {
          resp = ErrorResponse(
              Status::Internal("handler raised an unknown exception"));
        }
        t_done = trace::Collector::Clock::now();
        done.set_value(std::move(resp));
      });
      Json resp = future.get();
      if (collector.has_value()) {
        const trace::SpanNode root = collector->Finish(t_done);
        if (req.want_trace) {
          Json tj = TraceNodeJson(root);
          if (collector->dropped_spans() > 0) {
            tj.Set("dropped_spans",
                   Json::Int(static_cast<int64_t>(collector->dropped_spans())));
          }
          resp.Set("trace", std::move(tj));
        }
        if (options_.slow_query_ms >= 0 &&
            root.duration_micros >=
                static_cast<uint64_t>(options_.slow_query_ms) * 1000) {
          LogSlowQuery(session, req, root);
        }
      }
      WriteFrame(fd, resp.Serialize());
      return true;
    }
  }
  return true;
}

Json Server::HandleQuery(const SessionState& session, const Request& req) {
  // Bounded staleness: a client that just wrote to the primary passes
  // the write's seqno as min_seqno, and the replica holds the query
  // until its applied seqno catches up (read-your-writes across the
  // replication hop). Polling beats a condvar here: catch-up is the
  // common case (lag is single-digit ms), the poll is lock-free, and
  // the engine's write path stays untouched.
  if (req.min_seqno > 0 && engine_->AppliedSeqno() < req.min_seqno) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(req.wait_ms);
    while (engine_->AppliedSeqno() < req.min_seqno) {
      if (req.wait_ms <= 0 || std::chrono::steady_clock::now() >= give_up) {
        metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(Status::DeadlineExceeded(
            "applied seqno " + std::to_string(engine_->AppliedSeqno()) +
            " has not reached min_seqno " + std::to_string(req.min_seqno) +
            " within wait_ms=" + std::to_string(req.wait_ms)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Deadline precedence: the request's own deadline_ms (0 is a valid
  // "already expired" probe), else the server default, else none.
  CancelToken cancel;
  const CancelToken* cancel_ptr = nullptr;
  if (req.deadline_ms >= 0) {
    cancel.SetTimeout(std::chrono::milliseconds(req.deadline_ms));
    cancel_ptr = &cancel;
  } else if (options_.default_deadline_ms > 0) {
    cancel.SetTimeout(std::chrono::milliseconds(options_.default_deadline_ms));
    cancel_ptr = &cancel;
  }
  const ml::ExecMode mode = req.mode.has_value() ? *req.mode : session.mode;

  const auto start = std::chrono::steady_clock::now();
  Result<ml::QueryResult> result = ml::QueryResult{};
  {
    trace::Span exec_span(trace::Stage::kExecute);
    result = engine_->QuerySource(req.goal, session.level, mode, cancel_ptr);
  }
  const uint64_t micros = ElapsedMicros(start);
  metrics_.RecordQuery(session.level, static_cast<size_t>(mode), micros);

  if (!result.ok()) {
    if (result.status().IsDeadlineExceeded()) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(result.status());
  }
  metrics_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  metrics_.rows_returned.fetch_add(result->answers.size(),
                                   std::memory_order_relaxed);

  trace::Span serialize_span(trace::Stage::kSerialize);
  Json resp = OkResponse();
  resp.Set("level", Json::Str(session.level));
  resp.Set("mode", Json::Str(ExecModeName(mode)));
  Json answers = Json::Array();
  for (const datalog::Substitution& answer : result->answers) {
    answers.Push(Json::Str(answer.ToString()));
  }
  resp.Set("count", Json::Int(static_cast<int64_t>(result->answers.size())));
  resp.Set("answers", std::move(answers));
  if (req.want_proofs && !result->proofs.empty()) {
    Json proofs = Json::Array();
    for (const ml::ProofPtr& proof : result->proofs) {
      proofs.Push(Json::Str(ml::RenderProof(*proof)));
    }
    resp.Set("proofs", std::move(proofs));
  }
  resp.Set("elapsed_ms", Json::Double(static_cast<double>(micros) / 1000.0));
  return resp;
}

Json Server::HandleWrite(const SessionState& session, const Request& req) {
  const auto start = std::chrono::steady_clock::now();
  Json resp = OkResponse();
  if (req.cmd == Request::Cmd::kCheckpoint) {
    const Status s = engine_->Checkpoint();
    if (!s.ok()) {
      metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(s);
    }
    if (engine_->storage() != nullptr) {
      resp.Set("snapshot", Json::Str(engine_->storage()->snapshot_path()));
    }
  } else {
    const bool retract = req.cmd == Request::Cmd::kRetract;
    Result<ml::WriteResult> result =
        retract ? engine_->Retract(req.fact, session.level)
                : engine_->Assert(req.fact, session.level);
    if (!result.ok()) {
      metrics_.write_errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(result.status());
    }
    resp.Set("seqno", Json::Int(static_cast<int64_t>(result->seqno)));
    Json invalidated = Json::Array();
    for (const std::string& level : result->invalidated_levels) {
      invalidated.Push(Json::Str(level));
    }
    resp.Set("invalidated_levels", std::move(invalidated));
    Json maintained = Json::Array();
    for (const std::string& level : result->maintained_levels) {
      maintained.Push(Json::Str(level));
    }
    resp.Set("maintained_levels", std::move(maintained));
    resp.Set("durable", Json::Bool(engine_->storage() != nullptr));
  }
  metrics_.writes_ok.fetch_add(1, std::memory_order_relaxed);
  resp.Set("level", Json::Str(session.level));
  resp.Set("elapsed_ms",
           Json::Double(static_cast<double>(ElapsedMicros(start)) / 1000.0));
  return resp;
}

Json Server::StatsJson() {
  Json root = metrics_.ToJson();
  root.Set("in_flight",
           Json::Int(static_cast<int64_t>(
               in_flight_.load(std::memory_order_relaxed))));
  const ml::EngineCounters ec = engine_->Counters();
  Json engine = Json::Object();
  engine.Set("cache_hits", Json::Int(static_cast<int64_t>(ec.cache_hits)));
  engine.Set("cache_misses", Json::Int(static_cast<int64_t>(ec.cache_misses)));
  engine.Set("invalidation_events",
             Json::Int(static_cast<int64_t>(ec.invalidation_events)));
  engine.Set("cache_entries_invalidated",
             Json::Int(static_cast<int64_t>(ec.cache_entries_invalidated)));
  engine.Set("deltas_applied",
             Json::Int(static_cast<int64_t>(ec.deltas_applied)));
  engine.Set("fallback_recomputes",
             Json::Int(static_cast<int64_t>(ec.fallback_recomputes)));
  engine.Set("live_models", Json::Int(static_cast<int64_t>(ec.live_models)));
  engine.Set("plan_hits", Json::Int(static_cast<int64_t>(ec.plan_hits)));
  engine.Set("plan_misses", Json::Int(static_cast<int64_t>(ec.plan_misses)));
  engine.Set("magic_fallbacks",
             Json::Int(static_cast<int64_t>(ec.magic_fallbacks)));
  engine.Set("asserts_ok", Json::Int(static_cast<int64_t>(ec.asserts_ok)));
  engine.Set("retracts_ok", Json::Int(static_cast<int64_t>(ec.retracts_ok)));
  engine.Set("writes_rejected",
             Json::Int(static_cast<int64_t>(ec.writes_rejected)));
  engine.Set("checkpoints", Json::Int(static_cast<int64_t>(ec.checkpoints)));
  root.Set("engine", std::move(engine));
  const ml::StorageCounters sc = engine_->StorageStats();
  root.Set("applied_seqno", Json::Int(static_cast<int64_t>(sc.applied_seqno)));
  root.Set("read_only", Json::Bool(options_.read_only));
  if (sc.attached) {
    Json storage = Json::Object();
    storage.Set("dir", Json::Str(sc.dir));
    storage.Set("next_seqno", Json::Int(static_cast<int64_t>(sc.next_seqno)));
    storage.Set("snapshot_seqno",
                Json::Int(static_cast<int64_t>(sc.snapshot_seqno)));
    storage.Set("wal_records", Json::Int(static_cast<int64_t>(
                                   sc.wal_records)));
    storage.Set("wal_bytes", Json::Int(static_cast<int64_t>(sc.wal_bytes)));
    storage.Set("checkpoints", Json::Int(static_cast<int64_t>(
                                   sc.checkpoints)));
    if (!sc.recovery_data_loss.empty()) {
      storage.Set("recovery_data_loss", Json::Str(sc.recovery_data_loss));
    }
    root.Set("storage", std::move(storage));
  }
  // Replication, from whichever side this daemon plays: streams served
  // (primary) and, on a replica, the link state the Replicator tracks.
  Json repl = Json::Object();
  repl.Set("streams_served",
           Json::Int(static_cast<int64_t>(
               replication_streams_.load(std::memory_order_relaxed))));
  if (replicator_ != nullptr) {
    const replication::Replicator::Stats rs = replicator_->GetStats();
    repl.Set("connected", Json::Bool(rs.connected));
    repl.Set("applied_seqno",
             Json::Int(static_cast<int64_t>(rs.applied_seqno)));
    repl.Set("primary_next_seqno",
             Json::Int(static_cast<int64_t>(rs.primary_next_seqno)));
    // Lag in records: how far the primary's committed tip is past what
    // this replica has applied. 0 until the first heartbeat reports the
    // primary's position.
    const uint64_t lag = rs.primary_next_seqno > rs.applied_seqno + 1
                             ? rs.primary_next_seqno - rs.applied_seqno - 1
                             : 0;
    repl.Set("lag_records", Json::Int(static_cast<int64_t>(lag)));
    repl.Set("records_applied",
             Json::Int(static_cast<int64_t>(rs.records_applied)));
    repl.Set("snapshots_installed",
             Json::Int(static_cast<int64_t>(rs.snapshots_installed)));
    repl.Set("reconnects", Json::Int(static_cast<int64_t>(rs.reconnects)));
    if (!rs.last_error.empty()) {
      repl.Set("last_error", Json::Str(rs.last_error));
    }
  }
  root.Set("replication", std::move(repl));
  return root;
}

std::string Server::MetricsText() {
  std::string out = metrics_.PrometheusText();
  auto counter = [&out](const char* name, const char* help, uint64_t value,
                        const char* type = "counter") {
    out.append("# HELP ").append(name).append(" ").append(help).append("\n");
    out.append("# TYPE ").append(name).append(" ").append(type).append("\n");
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  };
  counter("multilog_requests_in_flight",
          "Dispatched requests currently executing or queued.",
          in_flight_.load(std::memory_order_relaxed), "gauge");

  const ml::EngineCounters ec = engine_->Counters();
  counter("multilog_engine_cache_hits_total",
          "Per-level cache lookups that hit.", ec.cache_hits);
  counter("multilog_engine_cache_misses_total",
          "Per-level cache lookups that had to build.", ec.cache_misses);
  counter("multilog_engine_invalidation_events_total", "Committed writes.",
          ec.invalidation_events);
  counter("multilog_engine_cache_entries_invalidated_total",
          "Cache entries dropped by committed writes.",
          ec.cache_entries_invalidated);
  counter("multilog_engine_asserts_ok_total", "Asserts committed.",
          ec.asserts_ok);
  counter("multilog_engine_retracts_ok_total", "Retracts committed.",
          ec.retracts_ok);
  counter("multilog_engine_writes_rejected_total",
          "Mutations rejected by security or integrity checks.",
          ec.writes_rejected);
  counter("multilog_engine_checkpoints_total", "Checkpoints taken.",
          ec.checkpoints);
  counter("multilog_engine_deltas_applied_total",
          "Cached models maintained in place by delta propagation.",
          ec.deltas_applied);
  counter("multilog_engine_fallback_recomputes_total",
          "Incremental maintenance fallbacks to full recompute.",
          ec.fallback_recomputes);
  counter("multilog_engine_live_models", "Maintained per-level models.",
          ec.live_models, "gauge");
  counter("multilog_engine_plan_hits_total",
          "Compiled magic plans served from the plan cache.", ec.plan_hits);
  counter("multilog_engine_plan_misses_total",
          "Magic plan compiles (first query of a binding pattern).",
          ec.plan_misses);
  counter("multilog_engine_magic_fallbacks_total",
          "Queries the magic path declined to the full bottom-up path.",
          ec.magic_fallbacks);

  const ml::StorageCounters sc = engine_->StorageStats();
  counter("multilog_applied_seqno",
          "Last mutation sequence number applied to the database.",
          sc.applied_seqno, "gauge");
  if (sc.attached) {
    counter("multilog_storage_next_seqno", "Next mutation sequence number.",
            sc.next_seqno, "gauge");
    counter("multilog_storage_snapshot_seqno",
            "Sequence number the on-disk snapshot covers.",
            sc.snapshot_seqno, "gauge");
    counter("multilog_storage_wal_records",
            "Records in the live WAL segment.", sc.wal_records, "gauge");
    counter("multilog_storage_wal_bytes", "Bytes in the live WAL segment.",
            sc.wal_bytes, "gauge");
    counter("multilog_storage_checkpoints_total", "Checkpoints folded.",
            sc.checkpoints);
    counter("multilog_storage_recovery_data_loss",
            "1 when the last recovery truncated a damaged WAL tail.",
            sc.recovery_data_loss.empty() ? 0 : 1, "gauge");
  }
  counter("multilog_replication_streams_served_total",
          "Replication streams this daemon has served as the primary.",
          replication_streams_.load(std::memory_order_relaxed));
  if (replicator_ != nullptr) {
    const replication::Replicator::Stats rs = replicator_->GetStats();
    counter("multilog_replica_connected",
            "1 while the replication link to the primary is up.",
            rs.connected ? 1 : 0, "gauge");
    counter("multilog_replica_lag_records",
            "Primary mutations not yet applied on this replica.",
            rs.primary_next_seqno > rs.applied_seqno + 1
                ? rs.primary_next_seqno - rs.applied_seqno - 1
                : 0,
            "gauge");
    counter("multilog_replica_records_applied_total",
            "Shipped WAL records applied by this replica.",
            rs.records_applied);
    counter("multilog_replica_snapshots_installed_total",
            "Catch-up snapshots installed by this replica.",
            rs.snapshots_installed);
    counter("multilog_replica_reconnects_total",
            "Reconnections to the primary after the first attempt.",
            rs.reconnects);
    counter("multilog_replica_has_error",
            "1 while the link's most recent failure is unresolved (cleared "
            "on the first healthy frame after reconnect).",
            rs.last_error.empty() ? 0 : 1, "gauge");
  }

  // Per-stage trace aggregates (populated when tracing is enabled
  // globally or per-query collectors ran).
  const std::array<trace::StageTotal, trace::kNumStages> stages =
      trace::AggregatedStages();
  out.append(
      "# HELP multilog_stage_spans_total Trace spans recorded per stage.\n"
      "# TYPE multilog_stage_spans_total counter\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    out.append("multilog_stage_spans_total{stage=\"")
        .append(trace::StageName(static_cast<trace::Stage>(i)))
        .append("\"} ")
        .append(std::to_string(stages[i].count))
        .append("\n");
  }
  out.append(
      "# HELP multilog_stage_duration_seconds_total Cumulative time per "
      "stage.\n"
      "# TYPE multilog_stage_duration_seconds_total counter\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  static_cast<double>(stages[i].total_micros) / 1e6);
    out.append("multilog_stage_duration_seconds_total{stage=\"")
        .append(trace::StageName(static_cast<trace::Stage>(i)))
        .append("\"} ")
        .append(buf)
        .append("\n");
  }
  return out;
}

void Server::LogSlowQuery(const SessionState& session, const Request& req,
                          const trace::SpanNode& root) {
  const ml::ExecMode mode = req.mode.has_value() ? *req.mode : session.mode;
  std::ostringstream line;
  line << "[multilogd] slow query: "
       << static_cast<double>(root.duration_micros) / 1000.0
       << " ms level=" << session.level << " mode=" << ExecModeName(mode);
  if (const trace::SpanNode* dominant = DominantSpan(root)) {
    line << " dominant=" << trace::StageName(dominant->stage) << ":"
         << static_cast<double>(dominant->duration_micros) / 1000.0 << "ms";
  }
  line << " goal=" << req.goal << "\n";
  std::ostream* sink =
      options_.slow_query_log != nullptr ? options_.slow_query_log
                                         : &std::cerr;
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  (*sink) << line.str() << std::flush;
}

Json Server::HandleSql(SessionState& session, const Request& req) {
  if (session.sql == nullptr) {
    metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::InvalidArgument(
        "this server has no SQL catalog configured"));
  }
  const auto start = std::chrono::steady_clock::now();
  Result<msql::ResultSet> result = [&] {
    trace::Span sql_span(trace::Stage::kSqlExecute);
    return session.sql->Execute(req.sql);
  }();
  const uint64_t micros = ElapsedMicros(start);
  metrics_.latency().Record(micros);

  if (!result.ok()) {
    metrics_.query_errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(result.status());
  }
  metrics_.queries_ok.fetch_add(1, std::memory_order_relaxed);
  metrics_.rows_returned.fetch_add(result->rows.size(),
                                   std::memory_order_relaxed);

  Json resp = OkResponse();
  Json columns = Json::Array();
  for (const std::string& column : result->columns) {
    columns.Push(Json::Str(column));
  }
  Json rows = Json::Array();
  for (const std::vector<std::string>& row : result->rows) {
    Json cells = Json::Array();
    for (const std::string& cell : row) cells.Push(Json::Str(cell));
    rows.Push(std::move(cells));
  }
  resp.Set("columns", std::move(columns));
  resp.Set("count", Json::Int(static_cast<int64_t>(result->rows.size())));
  resp.Set("rows", std::move(rows));
  resp.Set("elapsed_ms", Json::Double(static_cast<double>(micros) / 1000.0));
  return resp;
}

}  // namespace multilog::server
