#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace multilog::server {

namespace {

constexpr size_t kMaxDepth = 64;

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void SerializeTo(const Json& j, std::string* out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      return;
    case Json::Kind::kBool:
      *out += j.bool_value() ? "true" : "false";
      return;
    case Json::Kind::kInt:
      *out += std::to_string(j.int_value());
      return;
    case Json::Kind::kDouble: {
      const double d = j.number_value();
      if (!std::isfinite(d)) {  // JSON has no Inf/NaN
        *out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      return;
    }
    case Json::Kind::kString:
      AppendEscaped(j.string_value(), out);
      return;
    case Json::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        SerializeTo(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

/// Recursive-descent parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    MULTILOG_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value at " +
                                Where());
    }
    return value;
  }

 private:
  std::string Where() const { return "offset " + std::to_string(pos_); }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(size_t depth) {
    if (depth > kMaxDepth) {
      return Status::ParseError("JSON nesting deeper than " +
                                std::to_string(kMaxDepth));
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseStringValue();
      case 't':
        return ParseKeyword("true", Json::Bool(true));
      case 'f':
        return ParseKeyword("false", Json::Bool(false));
      case 'n':
        return ParseKeyword("null", Json::Null());
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        // Render unprintable bytes as hex: this message travels back to
        // the peer inside a JSON string and must itself stay valid
        // UTF-8.
        char what[16];
        if (c >= 0x20 && c < 0x7F) {
          std::snprintf(what, sizeof(what), "'%c'", c);
        } else {
          std::snprintf(what, sizeof(what), "byte 0x%02x",
                        static_cast<unsigned char>(c));
        }
        return Status::ParseError(std::string("unexpected ") + what + " at " +
                                  Where());
    }
  }

  Result<Json> ParseKeyword(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Status::ParseError("malformed keyword at " + Where());
    }
    pos_ += word.size();
    return value;
  }

  size_t ConsumeDigits() {
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    return digits;
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    // Strict JSON integer part: "0" alone, or nonzero-leading digits
    // (no "01").
    if (!Consume('0') && ConsumeDigits() == 0) {
      return Status::ParseError("malformed number at " + Where());
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (ConsumeDigits() == 0) {
        return Status::ParseError("digit required after '.' at " + Where());
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (ConsumeDigits() == 0) {
        return Status::ParseError("digit required in exponent at " + Where());
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json::Int(v);
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Status::ParseError("malformed number '" + token + "'");
    }
    return Json::Double(d);
  }

  /// Appends `cp` UTF-8 encoded; the code point is already validated.
  static void AppendCodePoint(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::ParseError("truncated \\u escape at " + Where());
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::ParseError("bad \\u escape at " + Where());
      }
    }
    pos_ += 4;
    return v;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status::ParseError("expected '\"' at " + Where());
    }
    const size_t body_start = pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated string at " + Where());
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        break;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated escape at " + Where());
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            MULTILOG_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the low half.
              if (!Consume('\\') || !Consume('u')) {
                return Status::ParseError("unpaired surrogate at " + Where());
              }
              MULTILOG_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Status::ParseError("unpaired surrogate at " + Where());
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Status::ParseError("unpaired surrogate at " + Where());
            }
            AppendCodePoint(cp, &out);
            break;
          }
          default:
            return Status::ParseError("unknown escape at " + Where());
        }
        continue;
      }
      if (c < 0x20) {
        return Status::ParseError("unescaped control character at " +
                                  Where());
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
    // Raw (non-escape) bytes must form valid UTF-8. Checking the source
    // slice keeps the scan linear; escapes were validated above and
    // AppendCodePoint only emits well-formed sequences.
    if (!IsValidUtf8(text_.substr(body_start, pos_ - 1 - body_start))) {
      return Status::ParseError("string is not valid UTF-8");
    }
    return out;
  }

  Result<Json> ParseStringValue() {
    MULTILOG_ASSIGN_OR_RETURN(std::string s, ParseString());
    return Json::Str(std::move(s));
  }

  Result<Json> ParseArray(size_t depth) {
    Consume('[');
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      MULTILOG_ASSIGN_OR_RETURN(Json item, ParseValue(depth + 1));
      arr.Push(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) {
        return Status::ParseError("expected ',' or ']' at " + Where());
      }
    }
  }

  Result<Json> ParseObject(size_t depth) {
    Consume('{');
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      MULTILOG_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::ParseError("expected ':' at " + Where());
      }
      MULTILOG_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) {
        return Status::ParseError("expected ',' or '}' at " + Where());
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool IsValidUtf8(std::string_view bytes) {
  size_t i = 0;
  const size_t n = bytes.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    size_t len;
    uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07u;
    } else {
      return false;  // bare continuation byte or 0xFE/0xFF
    }
    if (i + len > n) return false;
    for (size_t k = 1; k < len; ++k) {
      const unsigned char cc = static_cast<unsigned char>(bytes[i + k]);
      if ((cc & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3Fu);
    }
    // Overlong encodings, surrogates, and out-of-range code points.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    i += len;
  }
  return true;
}

void Json::Set(const std::string& key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_int()) ? v->int_value() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value() : fallback;
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace multilog::server
