#ifndef MULTILOG_SERVER_METRICS_H_
#define MULTILOG_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "server/json.h"

namespace multilog::server {

/// A lock-free latency histogram: powers-of-two microsecond buckets
/// (bucket i covers [2^i, 2^(i+1)) µs, bucket 0 covers [0, 2) µs).
/// Percentiles are read as the upper bound of the bucket containing the
/// requested rank - at most 2x off, which is the right trade for a hot
/// path that must never lock. Record and Snapshot may race freely; a
/// concurrent snapshot sees some recent recordings and misses others,
/// never torn values.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // 2^40 us ~ 12.7 days: plenty

  void Record(uint64_t micros);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t total_micros = 0;
    uint64_t max_micros = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Upper bound (µs) of the bucket holding the p-th percentile
    /// recording, p in [0, 100]. 0 when nothing was recorded.
    uint64_t PercentileMicros(double p) const;
    double MeanMicros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(total_micros) /
                              static_cast<double>(count);
    }
  };
  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// The server's observability surface: monotonic counters plus the
/// query latency histogram, all updated with relaxed atomics on the
/// request path and exported as one JSON object by the STATS command.
///
/// Per-(level, mode) query counters are preallocated from the
/// database's lattice at construction, so recording is an array index -
/// no lock, no allocation - and unknown levels (which never get past
/// HELLO validation) are simply not counted.
class ServerMetrics {
 public:
  /// `levels` comes from the engine's lattice (TopologicalOrder, so the
  /// STATS output lists lower levels first).
  explicit ServerMetrics(const std::vector<std::string>& levels);

  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  // -- connection lifecycle --
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};  // admission control
  std::atomic<uint64_t> connections_open{0};      // gauge
  /// Sessions whose state the event loop has freed (on close or on
  /// hand-off to a replication stream). Open sessions ==
  /// accepted - reaped: under connection churn this counter must keep
  /// pace with accepted, or the server is leaking session state - the
  /// exact bug the churn regression test pins.
  std::atomic<uint64_t> sessions_reaped{0};

  // -- request accounting --
  std::atomic<uint64_t> requests_total{0};     // well-framed requests
  std::atomic<uint64_t> rejected_oversized{0};  // frame larger than limit
  std::atomic<uint64_t> rejected_malformed{0};  // bad framing/JSON/schema
  std::atomic<uint64_t> rejected_overloaded{0};  // in-flight cap hit

  // -- query outcomes --
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> query_errors{0};        // engine-reported errors
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> rows_returned{0};

  // -- write outcomes (assert / retract / checkpoint) --
  std::atomic<uint64_t> writes_ok{0};
  std::atomic<uint64_t> write_errors{0};  // rejected or failed mutations

  /// Response frames the loop failed to deliver (send() error on a
  /// session's socket). Each failure also closes the session: a peer
  /// that cannot take responses must not keep submitting work.
  std::atomic<uint64_t> response_write_errors{0};

  /// Records one completed engine query. `mode_index` is the ExecMode's
  /// integer value (operational/reduced/check-both).
  void RecordQuery(const std::string& level, size_t mode_index,
                   uint64_t micros);

  LatencyHistogram& latency() { return latency_; }

  /// The whole surface as JSON; see DESIGN.md §11 for the schema.
  Json ToJson() const;

  /// The whole surface in Prometheus text exposition format 0.0.4
  /// (counters, the connections_open gauge, per-(level, mode) query
  /// counters as labels, and the latency histogram with cumulative
  /// `le` buckets in seconds). The server appends engine, storage, and
  /// trace-stage families before serving it; see DESIGN.md §13.
  std::string PrometheusText() const;

 private:
  static constexpr size_t kModes = 3;
  struct LevelCounters {
    std::array<std::atomic<uint64_t>, kModes> by_mode{};
  };

  std::vector<std::string> level_names_;
  /// Parallel to level_names_; stable storage, sized at construction.
  std::vector<LevelCounters> by_level_;
  std::map<std::string, size_t> level_index_;
  LatencyHistogram latency_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace multilog::server

#endif  // MULTILOG_SERVER_METRICS_H_
