#ifndef MULTILOG_MULTILOG_TRANSLATE_H_
#define MULTILOG_MULTILOG_TRANSLATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mls/relation.h"
#include "multilog/ast.h"
#include "multilog/engine.h"

namespace multilog::ml {

/// Encodes an MLS relation as a MultiLog database (Example 5.1): the
/// relation's lattice becomes Lambda (level/order facts) and every tuple
/// becomes a molecular m-fact
///
///   tc[pred(key : keyattr -c_ak-> key, attr -c-> value, ...)].
///
/// Attribute names are lower-cased to be identifiers; string values
/// become symbols, integers stay integers, nulls become `null`.
Result<Database> EncodeRelation(const mls::Relation& relation,
                                const std::string& predicate);

/// A cell-level fact extracted from a believed or stored relation; the
/// common currency for comparing the relational belief function beta
/// against the deductive bel/7 axioms.
struct CellFact {
  std::string key;             // rendered key value
  std::string attribute;       // lower-cased attribute name
  std::string value;           // rendered value ("null" for nulls)
  std::string classification;  // level name

  bool operator==(const CellFact& other) const {
    return key == other.key && attribute == other.attribute &&
           value == other.value && classification == other.classification;
  }
  bool operator<(const CellFact& other) const;
  std::string ToString() const;
};

/// Flattens a relation's tuples to cell facts (TC is dropped; it is the
/// believing level for derived relations).
std::vector<CellFact> RelationCells(const mls::Relation& relation);

/// Queries the engine's reduced model for bel(pred, K, A, V, C, level,
/// mode) facts and returns them as cell facts - what a deductive user at
/// `level` believes in `mode`.
Result<std::vector<CellFact>> BelievedCells(Engine* engine,
                                            const std::string& predicate,
                                            const std::string& level,
                                            const std::string& mode);

/// The inverse of EncodeRelation: reconstructs an MLS relation from the
/// ground molecular m-facts of `predicate` in a checked database (e.g. a
/// .mlog file). The scheme is inferred: attribute order from the first
/// molecule, classification ranges spanning the whole lattice, the key
/// from the cell(s) matching the molecule's key term (plain value, or a
/// compound `key(v1,...,vk)` for composite keys). The relation borrows
/// `cdb`'s lattice - `cdb` must outlive it. Round-trips with
/// EncodeRelation modulo string case (encoding lower-cases values).
Result<mls::Relation> DecodeRelation(const CheckedDatabase& cdb,
                                     const std::string& predicate);

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_TRANSLATE_H_
