#include "multilog/proof.h"

#include <algorithm>
#include <set>

namespace multilog::ml {

ProofPtr MakeProof(std::string rule, std::string conclusion,
                   std::vector<ProofPtr> premises) {
  auto node = std::make_shared<ProofNode>();
  node->rule = std::move(rule);
  node->conclusion = std::move(conclusion);
  node->premises = std::move(premises);
  return node;
}

size_t ProofHeight(const ProofNode& node) {
  size_t best = 0;
  for (const ProofPtr& p : node.premises) {
    best = std::max(best, ProofHeight(*p));
  }
  return best + 1;
}

size_t ProofSize(const ProofNode& node) {
  size_t total = 1;
  for (const ProofPtr& p : node.premises) total += ProofSize(*p);
  return total;
}

namespace {

void Render(const ProofNode& node, size_t depth, std::string* out) {
  out->append(depth * 2, ' ');
  *out += "(" + node.rule + ") " + node.conclusion + "\n";
  for (const ProofPtr& p : node.premises) Render(*p, depth + 1, out);
}

void Collect(const ProofNode& node, std::set<std::string>* rules) {
  rules->insert(node.rule);
  for (const ProofPtr& p : node.premises) Collect(*p, rules);
}

}  // namespace

std::string RenderProof(const ProofNode& node) {
  std::string out;
  Render(node, 0, &out);
  return out;
}

std::vector<std::string> ProofRules(const ProofNode& node) {
  std::set<std::string> rules;
  Collect(node, &rules);
  return {rules.begin(), rules.end()};
}

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

size_t EmitDot(const ProofNode& node, size_t* counter, std::string* out) {
  const size_t id = (*counter)++;
  *out += "  n" + std::to_string(id) + " [label=\"" + EscapeDot(node.rule) +
          "\\n" + EscapeDot(node.conclusion) + "\"];\n";
  for (const ProofPtr& p : node.premises) {
    size_t child = EmitDot(*p, counter, out);
    *out += "  n" + std::to_string(id) + " -> n" + std::to_string(child) +
            ";\n";
  }
  return id;
}

}  // namespace

std::string ProofToDot(const ProofNode& node) {
  std::string out = "digraph proof {\n  node [shape=box, fontsize=10];\n";
  size_t counter = 0;
  EmitDot(node, &counter, &out);
  out += "}\n";
  return out;
}

}  // namespace multilog::ml
