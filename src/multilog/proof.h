#ifndef MULTILOG_MULTILOG_PROOF_H_
#define MULTILOG_MULTILOG_PROOF_H_

#include <memory>
#include <string>
#include <vector>

namespace multilog::ml {

/// A node of a MultiLog proof tree (Section 5.4): the name of the proof
/// rule whose instance it is, the rendered conclusion sequent, and the
/// premise subtrees. Leaves are instances of EMPTY (or side conditions
/// discharged by the lattice). Subtrees may be shared when tabled
/// answers are reused; rendering duplicates them, matching the tree
/// reading of the paper.
struct ProofNode {
  std::string rule;
  std::string conclusion;
  std::vector<std::shared_ptr<const ProofNode>> premises;
};

using ProofPtr = std::shared_ptr<const ProofNode>;

/// Creates a leaf/internal node.
ProofPtr MakeProof(std::string rule, std::string conclusion,
                   std::vector<ProofPtr> premises = {});

/// Maximum number of nodes on any root-to-leaf path (the paper's
/// "height of a proof").
size_t ProofHeight(const ProofNode& node);

/// Total node count, duplicating shared subtrees (the paper's "size of
/// a proof").
size_t ProofSize(const ProofNode& node);

/// Renders the tree with indentation, premises below their conclusion:
///
///   (belief) <D1, c> |- c[p(k : a -u-> v)] << opt
///     (descend-o) ...
///       (deduction-g') ...
std::string RenderProof(const ProofNode& node);

/// Collects the distinct rule names used in the proof, sorted - the
/// "rule census" used when regenerating Figure 9's coverage.
std::vector<std::string> ProofRules(const ProofNode& node);

/// Renders the proof as a Graphviz digraph (one node per proof-rule
/// instance, edges from conclusions to their premises); pipe through
/// `dot -Tsvg` to visualize Figure 11-style trees.
std::string ProofToDot(const ProofNode& node);

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_PROOF_H_
