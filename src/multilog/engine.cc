#include "multilog/engine.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/str_util.h"
#include "common/trace.h"
#include "multilog/parser.h"

namespace multilog::ml {

namespace {

using datalog::Atom;
using datalog::Model;
using datalog::Substitution;

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Rewrites a level-specialized fact (rel__u(P,K,A,V,C)) back to its
/// generic form (rel(P,K,A,V,C,u)). Non-specialized facts pass through.
Atom DecodeFact(const Atom& fact) {
  static const struct {
    const char* prefix;
    size_t level_pos;
  } kTargets[] = {
      {"rel__", 5}, {"bel__", 5}, {"vis__", 5}, {"overridden__", 4}};
  for (const auto& target : kTargets) {
    const std::string& name = fact.predicate();
    if (!StartsWith(name, target.prefix)) continue;
    std::string base(name.substr(0, std::string(target.prefix).size() - 2));
    std::string level = name.substr(std::string(target.prefix).size());
    std::vector<datalog::Term> args = fact.args();
    args.insert(args.begin() + static_cast<long>(target.level_pos),
                datalog::Term::Sym(level));
    return Atom(base, std::move(args));
  }
  return fact;
}

/// Removes bindings of don't-care variables (the parser's "_dc<n>"
/// placeholders for omitted classifications, Section 7) and deduplicates
/// the remaining answers, keeping proof alignment.
void StripDontCare(std::vector<Substitution>* answers,
                   std::vector<ProofPtr>* proofs) {
  std::set<std::string> seen;
  std::vector<Substitution> kept_answers;
  std::vector<ProofPtr> kept_proofs;
  for (size_t i = 0; i < answers->size(); ++i) {
    Substitution restricted;
    std::map<Symbol, datalog::Term> sorted(
        (*answers)[i].bindings().begin(), (*answers)[i].bindings().end());
    for (const auto& [var, term] : sorted) {
      if (StartsWith(var.str(), "_dc")) continue;
      restricted.Bind(var, (*answers)[i].Apply(datalog::Term::Var(var)));
    }
    if (!seen.insert(restricted.ToString()).second) continue;
    kept_answers.push_back(std::move(restricted));
    if (proofs != nullptr && i < proofs->size()) {
      kept_proofs.push_back((*proofs)[i]);
    }
  }
  *answers = std::move(kept_answers);
  if (proofs != nullptr) *proofs = std::move(kept_proofs);
}

std::string AnswersKey(const std::vector<Substitution>& answers) {
  std::string key;
  for (const Substitution& s : answers) {
    key += s.ToString();
    key += ";";
  }
  return key;
}

/// Parses `source` as exactly one bodyless m-fact - the only clause
/// shape the mutation API accepts (rules belong to Pi, which is code,
/// not data; the write path covers Sigma only).
Result<MAtom> ParseFactAtom(std::string_view source) {
  MULTILOG_ASSIGN_OR_RETURN(Database db, ParseMultiLog(source));
  if (db.sigma.size() != 1 || !db.lambda.empty() || !db.pi.empty() ||
      !db.queries.empty() || !db.sigma[0].IsFact()) {
    return Status::InvalidArgument(
        "a mutation must be exactly one m-fact 's[p(k : a -c-> v)].'; got: " +
        std::string(source));
  }
  return std::get<MAtom>(db.sigma[0].head);
}

/// The stored clause structurally equal to `fact`, or sigma.end().
std::vector<MlClause>::iterator FindStoredFact(std::vector<MlClause>* sigma,
                                               const MAtom& fact) {
  return std::find_if(sigma->begin(), sigma->end(),
                      [&fact](const MlClause& c) {
                        const auto* m = std::get_if<MAtom>(&c.head);
                        return c.IsFact() && m != nullptr && *m == fact;
                      });
}

}  // namespace

bool IncrementalMaintenanceDefault() {
  return std::getenv("MULTILOG_NO_INCREMENTAL") == nullptr;
}

bool MagicPlansDefault() {
  return std::getenv("MULTILOG_NO_MAGIC") == nullptr;
}

bool GroupCommitDefault() {
  return std::getenv("MULTILOG_NO_GROUP_COMMIT") == nullptr;
}

Result<std::string> RoutingKeyOfFact(std::string_view fact_source) {
  MULTILOG_ASSIGN_OR_RETURN(MAtom fact, ParseFactAtom(fact_source));
  if (!fact.key.IsGround()) {
    return Status::InvalidArgument(
        "a mutation's entity key must be ground; got: " +
        std::string(fact_source));
  }
  return fact.key.ToString();
}

Result<Engine> Engine::FromSource(std::string_view source,
                                  EngineOptions options) {
  MULTILOG_ASSIGN_OR_RETURN(Database db, ParseMultiLog(source));
  return FromDatabase(std::move(db), options);
}

Result<Engine> Engine::FromDatabase(Database db, EngineOptions options) {
  MULTILOG_ASSIGN_OR_RETURN(
      CheckedDatabase cdb,
      CheckDatabase(std::move(db), options.require_consistency));
  return Engine(std::move(cdb), options);
}

Result<Engine> Engine::FromStorage(storage::Storage* storage,
                                   EngineOptions options) {
  if (storage == nullptr) {
    return Status::InvalidArgument("FromStorage requires a non-null storage");
  }
  MULTILOG_ASSIGN_OR_RETURN(
      Database db, ParseMultiLog(storage->recovered().snapshot_source));
  // Replay the WAL tail over the snapshot. Each record was validated
  // (security + Definition 5.4) before it was ever written, so replay
  // applies it verbatim; it is also idempotent - a duplicate assert or
  // absent retract (possible only in the checkpoint crash window, and
  // normally filtered by seqnos) is skipped, not fatal.
  for (const storage::WalRecord& rec : storage->recovered().records) {
    MULTILOG_ASSIGN_OR_RETURN(MAtom fact, ParseFactAtom(rec.fact));
    auto it = FindStoredFact(&db.sigma, fact);
    if (rec.type == storage::WalRecordType::kAssert) {
      if (it == db.sigma.end()) db.sigma.push_back(MlClause{std::move(fact), {}});
    } else if (rec.type == storage::WalRecordType::kRetract) {
      if (it != db.sigma.end()) db.sigma.erase(it);
    }
  }
  MULTILOG_ASSIGN_OR_RETURN(Engine engine,
                            FromDatabase(std::move(db), options));
  engine.storage_ = storage;
  engine.caches_->applied_seqno.store(storage->next_seqno() - 1, kRelaxed);
  return engine;
}

Result<const ReducedProgram*> Engine::Reduced(const std::string& user_level) {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  return ReducedLocked(user_level);
}

Result<const ReducedProgram*> Engine::ReducedLocked(
    const std::string& user_level) {
  const Symbol level = Symbol::Intern(user_level);
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->reduced.find(level);
    if (it != caches_->reduced.end()) {
      caches_->cache_hits.fetch_add(1, kRelaxed);
      return &it->second;
    }
  }
  caches_->cache_misses.fetch_add(1, kRelaxed);
  // Build outside the structure lock (Reduce only reads cdb_, which
  // db_mu protects), then publish; on a race the first insert wins and
  // both callers see it.
  trace::Span reduce_span(trace::Stage::kReduce);
  MULTILOG_ASSIGN_OR_RETURN(ReducedProgram rp,
                            Reduce(cdb_, user_level, options_.reduction));
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  auto [it, inserted] = caches_->reduced.try_emplace(level, std::move(rp));
  return &it->second;
}

Result<const datalog::Model*> Engine::ReducedModel(
    const std::string& user_level, const CancelToken* cancel) {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  return ReducedModelLocked(user_level, cancel);
}

Result<const datalog::Model*> Engine::ReducedModelLocked(
    const std::string& user_level, const CancelToken* cancel) {
  const Symbol level = Symbol::Intern(user_level);
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->models.find(level);
    if (it != caches_->models.end()) {
      caches_->cache_hits.fetch_add(1, kRelaxed);
      return &it->second;
    }
  }
  caches_->cache_misses.fetch_add(1, kRelaxed);
  // The reduced program is immutable once published, so evaluation can
  // run outside the structure lock; racing evaluations of the same
  // level produce identical models (the parallel merge is
  // deterministic) and the first publication wins. A cancelled
  // evaluation returns before the publication point, so no partial
  // model is ever cached.
  MULTILOG_ASSIGN_OR_RETURN(const ReducedProgram* rp,
                            ReducedLocked(user_level));
  datalog::EvalOptions eval = options_.eval;
  eval.cancel = cancel;
  Model raw;
  {
    trace::Span eval_span(trace::Stage::kEvalModel);
    MULTILOG_ASSIGN_OR_RETURN(raw, datalog::Evaluate(rp->program, eval));
  }
  Model decoded;
  {
    trace::Span decode_span(trace::Stage::kDecodeModel);
    for (const std::string& pred : raw.Predicates()) {
      for (const Atom& fact : raw.FactsFor(pred)) {
        decoded.Insert(DecodeFact(fact));
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  // Keep the encoded fixpoint alongside the decoded view: writes
  // maintain it in place via ApplyDelta (racing builders publish
  // identical models, so first-wins holds for both maps).
  if (options_.incremental) {
    caches_->raw_models.try_emplace(level, std::move(raw));
  }
  auto [it, inserted] = caches_->models.try_emplace(level, std::move(decoded));
  return &it->second;
}

Result<Engine::InterpreterSlot*> Engine::GetInterpreterSlot(
    const std::string& user_level) {
  const Symbol level = Symbol::Intern(user_level);
  InterpreterSlot* slot = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->interpreters.find(level);
    if (it != caches_->interpreters.end()) slot = &it->second;
  }
  if (slot == nullptr) {
    caches_->cache_misses.fetch_add(1, kRelaxed);
    std::unique_lock<std::shared_mutex> lock(caches_->mu);
    slot = &caches_->interpreters[level];  // try_emplace; node is stable
  } else {
    caches_->cache_hits.fetch_add(1, kRelaxed);
  }
  std::lock_guard<std::mutex> init(slot->mu);
  if (slot->interp == nullptr) {
    MULTILOG_ASSIGN_OR_RETURN(
        Interpreter interp,
        Interpreter::Create(&cdb_, user_level, options_.interpreter));
    slot->interp = std::make_unique<Interpreter>(std::move(interp));
  }
  return slot;
}

Result<Interpreter*> Engine::OperationalInterpreter(
    const std::string& user_level) {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  MULTILOG_ASSIGN_OR_RETURN(InterpreterSlot * slot,
                            GetInterpreterSlot(user_level));
  return slot->interp.get();
}

Result<QueryResult> Engine::Query(const std::vector<MlLiteral>& goal,
                                  const std::string& user_level,
                                  ExecMode mode, const CancelToken* cancel) {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  return QueryLocked(goal, user_level, mode, cancel);
}

Result<QueryResult> Engine::QueryLocked(const std::vector<MlLiteral>& goal,
                                        const std::string& user_level,
                                        ExecMode mode,
                                        const CancelToken* cancel) {
  MULTILOG_RETURN_IF_ERROR(cdb_.lattice.Index(user_level).status());
  // A pre-expired deadline fails fast, before any cached work is
  // consulted (the server's "deadline_ms: 0" probe relies on this).
  if (cancel != nullptr && cancel->Cancelled()) {
    return Status::DeadlineExceeded("query cancelled (deadline exceeded)");
  }

  QueryResult operational;
  if (mode == ExecMode::kOperational || mode == ExecMode::kCheckBoth) {
    trace::Span solve_span(trace::Stage::kOperationalSolve);
    MULTILOG_ASSIGN_OR_RETURN(InterpreterSlot * slot,
                              GetInterpreterSlot(user_level));
    // Solving mutates the interpreter's call tables, so hold the
    // level's mutex for the duration; distinct levels run in parallel.
    std::lock_guard<std::mutex> lock(slot->mu);
    MULTILOG_ASSIGN_OR_RETURN(std::vector<Interpreter::Answer> answers,
                              slot->interp->Solve(goal, cancel));
    for (Interpreter::Answer& a : answers) {
      operational.answers.push_back(std::move(a.subst));
      operational.proofs.push_back(std::move(a.proof));
    }
    StripDontCare(&operational.answers, &operational.proofs);
    if (mode == ExecMode::kOperational) return operational;
  }

  QueryResult reduced;
  {
    // The decoded model holds generic facts; match the *generic* goal
    // against it (specialization only matters for evaluation).
    MULTILOG_ASSIGN_OR_RETURN(std::vector<datalog::Literal> generic,
                              TranslateGoalGeneric(goal, user_level));

    // Goal-directed fast path: a selective goal with no cached full
    // model runs through a compiled magic plan, deriving only the
    // goal-relevant fragment. Falls through to the full build-and-match
    // path whenever the plan layer declines.
    bool magic_served = false;
    if (options_.magic) {
      Result<std::vector<Substitution>> outcome =
          Status::Internal("magic outcome unset");
      if (TryMagicLocked(generic, user_level, cancel, &outcome)) {
        MULTILOG_RETURN_IF_ERROR(outcome.status());
        reduced.answers = std::move(outcome.value());
        magic_served = true;
      }
    }
    if (!magic_served) {
      // Evaluate the cached model, then match the goal against it.
      MULTILOG_ASSIGN_OR_RETURN(const Model* model,
                                ReducedModelLocked(user_level, cancel));
      trace::Span query_span(trace::Stage::kQueryModel);
      MULTILOG_ASSIGN_OR_RETURN(std::vector<Substitution> answers,
                                datalog::QueryModel(*model, generic, cancel));
      reduced.answers = std::move(answers);
    }
    StripDontCare(&reduced.answers, nullptr);
  }
  if (mode == ExecMode::kReduced) return reduced;

  // kCheckBoth: Theorem 6.1 as an executable assertion.
  trace::Span compare_span(trace::Stage::kCheckCompare);
  std::vector<Substitution> a = operational.answers;
  std::vector<Substitution> b = reduced.answers;
  auto by_text = [](const Substitution& x, const Substitution& y) {
    return x.ToString() < y.ToString();
  };
  std::sort(a.begin(), a.end(), by_text);
  std::sort(b.begin(), b.end(), by_text);
  if (AnswersKey(a) != AnswersKey(b)) {
    std::string msg =
        "operational and reduced semantics disagree (Theorem 6.1 "
        "violation)\noperational:\n";
    for (const Substitution& s : a) msg += "  " + s.ToString() + "\n";
    msg += "reduced:\n";
    for (const Substitution& s : b) msg += "  " + s.ToString() + "\n";
    return Status::Internal(msg);
  }
  return operational;
}

bool Engine::TryMagicLocked(
    const std::vector<datalog::Literal>& generic,
    const std::string& user_level, const CancelToken* cancel,
    Result<std::vector<datalog::Substitution>>* outcome) {
  const Symbol level = Symbol::Intern(user_level);
  {
    // A cached full model answers any goal at hash-lookup speed; magic
    // only wins when the alternative is building that model.
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    if (caches_->models.count(level) > 0) return false;
  }

  datalog::MagicGoalPattern pattern = datalog::ParameterizeGoal(generic);
  if (!pattern.any_bound) {
    // All-free goals enumerate the whole relation anyway; specializing
    // them buys nothing, so they always take the full path.
    caches_->magic_fallbacks.fetch_add(1, kRelaxed);
    return false;
  }
  const auto key =
      std::make_pair(level, Symbol::Intern(pattern.signature));

  std::shared_ptr<const datalog::MagicPlan> plan;
  uint64_t epoch = 0;
  bool known_rejection = false;
  {
    trace::Span lookup_span(trace::Stage::kPlanLookup);
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto epoch_it = caches_->plan_epochs.find(level);
    epoch = epoch_it == caches_->plan_epochs.end() ? 0 : epoch_it->second;
    auto it = caches_->plans.find(key);
    if (it != caches_->plans.end()) {
      if (it->second.plan == nullptr) {
        // A remembered rejection is structural - negation/aggregate
        // reachability depends on the rules alone, and mutations write
        // facts only - so it stays valid across epochs.
        known_rejection = true;
      } else if (it->second.epoch == epoch) {
        caches_->plan_hits.fetch_add(1, kRelaxed);
        plan = it->second.plan;
      }
    }
  }
  if (known_rejection) {
    caches_->magic_fallbacks.fetch_add(1, kRelaxed);
    return false;
  }

  if (plan == nullptr) {
    caches_->plan_misses.fetch_add(1, kRelaxed);
    Result<const ReducedProgram*> rp = ReducedLocked(user_level);
    if (!rp.ok()) {
      // The full path would fail identically building the same program.
      *outcome = rp.status();
      return true;
    }
    // Plans compile from the generic (display) program: the generic
    // goal's predicates match it directly, and the specialization
    // rewrite it skips is semantics-preserving, so the reachable
    // fragment's fixpoint restricted to the goal equals the decoded
    // model's answers.
    Result<datalog::MagicPlan> compiled =
        [&]() -> Result<datalog::MagicPlan> {
      trace::Span rewrite_span(trace::Stage::kMagicRewrite);
      return datalog::CompileMagicPlan((*rp)->display, pattern,
                                       options_.eval);
    }();
    std::shared_ptr<const datalog::MagicPlan> publish;
    if (compiled.ok()) {
      publish = std::make_shared<const datalog::MagicPlan>(
          std::move(compiled.value()));
    } else if (!compiled.status().IsInvalidProgram()) {
      // Only InvalidProgram means "this fragment cannot be
      // goal-directed"; anything else is a genuine failure.
      *outcome = compiled.status();
      return true;
    }
    {
      // First publication wins, like the model caches; identical inputs
      // compile to identical plans, so the loser's work is just wasted,
      // not wrong. A mutation cannot have intervened (readers hold
      // db_mu shared), but the epoch guard keeps a stale publication
      // impossible even if that invariant ever weakens.
      std::unique_lock<std::shared_mutex> lock(caches_->mu);
      auto [it, inserted] =
          caches_->plans.try_emplace(key, Caches::PlanEntry{epoch, publish});
      if (!inserted && it->second.epoch == epoch) publish = it->second.plan;
    }
    if (publish == nullptr) {
      caches_->magic_fallbacks.fetch_add(1, kRelaxed);
      return false;
    }
    plan = std::move(publish);
  }

  datalog::EvalOptions eval = options_.eval;
  eval.cancel = cancel;
  Result<std::vector<datalog::Substitution>> answers =
      [&]() -> Result<std::vector<datalog::Substitution>> {
    trace::Span eval_span(trace::Stage::kEvalModel);
    return datalog::ExecuteMagicPlan(*plan, pattern.params, eval);
  }();
  if (!answers.ok()) {
    if (answers.status().IsResourceExhausted() ||
        answers.status().IsDeadlineExceeded()) {
      // Budget/deadline failures must surface, not silently retry a
      // strictly more expensive full evaluation.
      *outcome = answers.status();
      return true;
    }
    // Execution-time InvalidProgram (e.g. a non-ground negation in the
    // goal): let the full path run and report whatever it reports.
    caches_->magic_fallbacks.fetch_add(1, kRelaxed);
    return false;
  }
  *outcome = std::move(answers);
  return true;
}

Result<QueryResult> Engine::QuerySource(std::string_view goal_text,
                                        const std::string& user_level,
                                        ExecMode mode,
                                        const CancelToken* cancel) {
  MULTILOG_ASSIGN_OR_RETURN(std::vector<MlLiteral> goal,
                            ParseMlGoal(goal_text));
  return Query(goal, user_level, mode, cancel);
}

Result<std::vector<QueryResult>> Engine::RunStoredQueries(
    const std::string& user_level, ExecMode mode,
    const CancelToken* cancel) {
  std::vector<QueryResult> out;
  for (const std::vector<MlLiteral>& goal : cdb_.db.queries) {
    MULTILOG_ASSIGN_OR_RETURN(QueryResult r,
                              Query(goal, user_level, mode, cancel));
    out.push_back(std::move(r));
  }
  return out;
}

Result<WriteResult> Engine::Assert(std::string_view fact_source,
                                   const std::string& level) {
  return Mutate(fact_source, level, /*retract=*/false);
}

Result<WriteResult> Engine::Retract(std::string_view fact_source,
                                    const std::string& level) {
  return Mutate(fact_source, level, /*retract=*/true);
}

Result<WriteResult> Engine::Mutate(std::string_view fact_source,
                                   const std::string& level, bool retract) {
  auto rejected = [this](Status s) -> Status {
    caches_->writes_rejected.fetch_add(1, kRelaxed);
    return s;
  };

  // Parse outside the database lock: a malformed request should not
  // stall queries.
  Result<MAtom> parsed = ParseFactAtom(fact_source);
  if (!parsed.ok()) return rejected(parsed.status());
  MAtom fact = std::move(parsed.value());

  std::unique_lock<std::shared_mutex> db_lock(caches_->db_mu);

  // --- Validate: security pinning, then integrity. Nothing below this
  // block may fail after the WAL append (write-ahead discipline), so
  // every rejection happens here, before any state - durable or
  // in-memory - changes. The duplicate/existence and Definition 5.4
  // checks go through sigma_index_, so their cost is O(key group), not
  // O(|Sigma|).
  Status valid = [&]() -> Status {
    trace::Span validate_span(trace::Stage::kValidate);
    if (!cdb_.lattice.Contains(level)) {
      return Status::InvalidArgument(
          "unknown writing level '" + level + "' (not asserted by Lambda)");
    }
    if (!fact.level.IsSymbol() || fact.level.name() != level) {
      return Status::SecurityViolation(
          "a subject cleared at '" + level + "' may only write " + level +
          "-facts (no write-up, no write-down); got " + fact.ToString());
    }
    for (const MCell& c : fact.cells) {
      if (!c.classification.IsSymbol()) {
        return Status::SecurityViolation(
            "classification of attribute '" + c.attribute +
            "' must be a ground level, got " + c.classification.ToString());
      }
      const std::string& cl = c.classification.name();
      if (!cdb_.lattice.Contains(cl)) {
        return Status::SecurityViolation("classification '" + cl +
                                         "' is not a level of Lambda");
      }
      Result<bool> leq = cdb_.lattice.Leq(cl, level);
      if (!leq.ok()) return leq.status();
      if (!leq.value()) {
        return Status::SecurityViolation(
            "classification '" + cl + "' of attribute '" + c.attribute +
            "' is not dominated by the writing level '" + level + "'");
      }
    }

    const size_t stored_count = sigma_index_.FactCount(fact);
    if (retract) {
      if (stored_count == 0) {
        return Status::NotFound("no such stored fact to retract: " +
                                fact.ToString() +
                                " (derived facts cannot be retracted)");
      }
      return Status::OK();
    }
    if (stored_count > 0) {
      return Status::InvalidArgument("fact already asserted: " +
                                     fact.ToString());
    }
    return CheckFactIntegrity(sigma_index_, cdb_.lattice, fact);
  }();
  if (!valid.ok()) return rejected(std::move(valid));

  // --- Log (durable engines): fsynced before memory changes. An I/O
  // failure here is not a rejection - the write is simply not committed,
  // and neither Sigma nor any cache has changed.
  WriteResult result;
  const std::string canonical = MlClause{fact, {}}.ToString();
  // Group commit: append unsynced here (under the database lock, so
  // tickets order with seqnos), apply in memory, then release the lock
  // and join a shared fdatasync before acknowledging. sync_ticket != 0
  // marks the deferred-durability path.
  uint64_t sync_ticket = 0;
  if (storage_ != nullptr) {
    const bool group = options_.group_commit;
    Result<uint64_t> seq =
        retract ? storage_->AppendRetract(level, canonical, /*sync=*/!group)
                : storage_->AppendAssert(level, canonical, /*sync=*/!group);
    if (!seq.ok()) return seq.status();
    result.seqno = seq.value();
    if (group) sync_ticket = storage_->last_append_ticket();
  } else {
    result.seqno = ++mem_seqno_;
  }

  // --- Apply + propagate, keeping sigma_index_ in lockstep with
  // sigma. The retract-side FindStoredFact only locates the erase
  // position: the index already proved the fact is stored. The erase
  // position is captured *before* the erase - the incremental path
  // splices exactly that entry's clauses out of maintained programs.
  const MlClause fact_clause{fact, {}};
  size_t sigma_index = 0;
  if (retract) {
    auto it = FindStoredFact(&cdb_.db.sigma, fact);
    sigma_index = static_cast<size_t>(it - cdb_.db.sigma.begin());
    cdb_.db.sigma.erase(it);
    sigma_index_.Remove(fact);
    caches_->retracts_ok.fetch_add(1, kRelaxed);
  } else {
    sigma_index_.Add(fact);
    cdb_.db.sigma.push_back(MlClause{std::move(fact), {}});
    caches_->asserts_ok.fetch_add(1, kRelaxed);
  }
  if (options_.incremental) {
    PropagateDelta(level, fact_clause, retract, sigma_index, &result);
  } else {
    result.invalidated_levels = InvalidateDominating(level);
  }
  // Compiled magic plans hold copies of the clauses they reached, so
  // the splice path cannot maintain them in place; every dominating
  // level's plans are dropped and its epoch bumped instead (plans for
  // non-dominating levels stay valid: the written fact is invisible
  // under their dominance guards).
  PrunePlans(level);
  caches_->applied_seqno.store(result.seqno, kRelaxed);
  if (sync_ticket != 0) {
    // Durability outside the database lock: queries proceed while this
    // writer (and every concurrent one) rides a single fdatasync. An
    // fsync failure is reported to this committer even though the
    // in-memory apply stands - the client was never acked, and a crash
    // may lose the record; a client that got an error must not assume
    // the write exists.
    db_lock.unlock();
    trace::Span sync_span(trace::Stage::kWalAppend);
    MULTILOG_RETURN_IF_ERROR(storage_->SyncTo(sync_ticket));
  }
  return result;
}

Result<WriteResult> Engine::ApplyReplicated(const storage::WalRecord& record) {
  trace::Span span(trace::Stage::kReplicaApply);
  const bool retract = record.type == storage::WalRecordType::kRetract;
  if (!retract && record.type != storage::WalRecordType::kAssert) {
    return Status::InvalidArgument("replicated record is not a mutation");
  }
  // Parse outside the lock, like Mutate. The record was produced by the
  // primary's canonical dump of a validated fact, so a parse failure is
  // stream corruption or divergence, never bad user input.
  Result<MAtom> parsed = ParseFactAtom(record.fact);
  if (!parsed.ok()) {
    return Status::Internal("replicated record seqno " +
                            std::to_string(record.seqno) +
                            " does not parse as an m-fact: " +
                            parsed.status().ToString());
  }
  MAtom fact = std::move(parsed.value());

  std::unique_lock<std::shared_mutex> db_lock(caches_->db_mu);

  WriteResult result;
  result.seqno = record.seqno;
  const uint64_t applied = caches_->applied_seqno.load(kRelaxed);
  if (record.seqno <= applied) {
    // Already applied (reconnect overlap / snapshot boundary replay).
    return result;
  }
  if (record.seqno != applied + 1) {
    // Every stream path delivers contiguous seqnos (mutation seqnos are
    // dense and the shipper never skips), so a gap means lost frames.
    // Refuse rather than apply: a silent skip is divergence; the
    // replicator answers an apply failure with a snapshot resync.
    return Status::Internal(
        "replicated record seqno " + std::to_string(record.seqno) +
        " skips ahead of applied seqno " + std::to_string(applied) +
        "; the stream lost records - resync from a snapshot");
  }

  // Paranoia check: the primary validated this write before logging it,
  // so a violation here means the replica's Sigma has diverged (or the
  // stream is corrupt). Surfaced as Internal so the replicator resyncs
  // from a snapshot instead of quietly serving wrong answers. Clearance
  // re-binding is deliberately skipped - record.level IS the clearance
  // the primary already pinned - but the level must still exist here.
  Status valid = [&]() -> Status {
    trace::Span validate_span(trace::Stage::kValidate);
    if (!cdb_.lattice.Contains(record.level)) {
      return Status::Internal("replicated level '" + record.level +
                              "' is not a level of this replica's lattice");
    }
    if (retract || sigma_index_.FactCount(fact) > 0) return Status::OK();
    Status s = CheckFactIntegrity(sigma_index_, cdb_.lattice, fact);
    if (!s.ok()) {
      return Status::Internal(
          "replica paranoia check failed at seqno " +
          std::to_string(record.seqno) + ": " + s.ToString());
    }
    return s;
  }();
  if (!valid.ok()) return valid;

  // Persist first (write-ahead), keeping the primary's seqno. The
  // record goes to the local WAL even when applying it is a no-op
  // (duplicate assert / absent retract): the disk must agree with the
  // primary on what the next expected seqno is, or a restarted replica
  // would re-request a range the primary may have checkpointed away.
  if (storage_ != nullptr) {
    MULTILOG_RETURN_IF_ERROR(storage_->AppendReplicated(record));
  }

  // Apply + propagate, exactly as Mutate does - so PR 6 incremental
  // maintenance and PR 7 plan invalidation compose unchanged.
  const auto it = FindStoredFact(&cdb_.db.sigma, fact);
  const bool applies = retract ? it != cdb_.db.sigma.end()
                               : it == cdb_.db.sigma.end();
  if (applies) {
    const MlClause fact_clause{fact, {}};
    size_t sigma_index = 0;
    if (retract) {
      sigma_index = static_cast<size_t>(it - cdb_.db.sigma.begin());
      cdb_.db.sigma.erase(it);
      sigma_index_.Remove(fact);
      caches_->retracts_ok.fetch_add(1, kRelaxed);
    } else {
      sigma_index_.Add(fact);
      cdb_.db.sigma.push_back(MlClause{std::move(fact), {}});
      caches_->asserts_ok.fetch_add(1, kRelaxed);
    }
    if (options_.incremental) {
      PropagateDelta(record.level, fact_clause, retract, sigma_index,
                     &result);
    } else {
      result.invalidated_levels = InvalidateDominating(record.level);
    }
    PrunePlans(record.level);
  }
  caches_->applied_seqno.store(record.seqno, kRelaxed);
  return result;
}

Status Engine::InstallSnapshot(uint64_t seqno, const std::string& source) {
  MULTILOG_ASSIGN_OR_RETURN(Database db, ParseMultiLog(source));
  MULTILOG_ASSIGN_OR_RETURN(
      CheckedDatabase fresh,
      CheckDatabase(std::move(db), options_.require_consistency));
  // The server hands out lattice() references without the database
  // lock (sessions bind their clearance against it), so the lattice
  // object must never be replaced - only verified equivalent. A
  // primary that changed its Lambda mid-stream is not a replication
  // event, it is a different database.
  if (fresh.lattice.TopologicalOrder() != cdb_.lattice.TopologicalOrder()) {
    return Status::Internal(
        "replicated snapshot carries a different security lattice; "
        "a replica cannot follow a primary whose Lambda changed");
  }

  std::unique_lock<std::shared_mutex> db_lock(caches_->db_mu);
  if (storage_ != nullptr) {
    MULTILOG_RETURN_IF_ERROR(storage_->InstallSnapshot(seqno, source));
  }
  cdb_.db = std::move(fresh.db);
  sigma_index_ = SigmaIndex::Build(cdb_.db);

  // Wholesale replacement: every cache is stale, whatever its level.
  uint64_t dropped = 0;
  {
    std::unique_lock<std::shared_mutex> lock(caches_->mu);
    dropped += caches_->reduced.size() + caches_->models.size() +
               caches_->interpreters.size();
    caches_->reduced.clear();
    caches_->models.clear();
    caches_->raw_models.clear();
    caches_->interpreters.clear();
    caches_->plans.clear();
    for (auto& [sym, epoch] : caches_->plan_epochs) ++epoch;
  }
  caches_->invalidation_events.fetch_add(1, kRelaxed);
  caches_->cache_entries_invalidated.fetch_add(dropped, kRelaxed);
  caches_->applied_seqno.store(seqno, kRelaxed);
  return Status::OK();
}

uint64_t Engine::AppliedSeqno() const {
  return caches_->applied_seqno.load(kRelaxed);
}

void Engine::PrunePlans(const std::string& written_level) {
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  for (auto it = caches_->plans.begin(); it != caches_->plans.end();) {
    // Remembered rejections (nullptr plans) survive writes: whether the
    // reachable fragment has negation/aggregates is a property of the
    // rules, and mutations only touch Sigma facts. Compiled plans bake
    // in EDB facts, so those must go.
    if (it->second.plan == nullptr) {
      ++it;
      continue;
    }
    Result<bool> leq =
        cdb_.lattice.Leq(written_level, std::string(it->first.first.str()));
    if (leq.ok() && leq.value()) {
      it = caches_->plans.erase(it);
    } else {
      ++it;
    }
  }
  for (const std::string& name : cdb_.lattice.names()) {
    Result<bool> leq = cdb_.lattice.Leq(written_level, name);
    if (leq.ok() && leq.value()) {
      ++caches_->plan_epochs[Symbol::Intern(name)];
    }
  }
}

void Engine::PropagateDelta(const std::string& written_level,
                            const MlClause& fact, bool retract,
                            size_t sigma_index, WriteResult* result) {
  // db_mu is held exclusively, so no reader races the in-place updates;
  // `mu` still guards the maps' structure against nothing here but is
  // taken for symmetry with the read paths.
  uint64_t dropped = 0;
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  std::set<std::string> cached;
  for (const auto& [sym, unused] : caches_->reduced) {
    cached.insert(std::string(sym.str()));
  }
  for (const auto& [sym, unused] : caches_->models) {
    cached.insert(std::string(sym.str()));
  }
  for (const auto& [sym, unused] : caches_->interpreters) {
    cached.insert(std::string(sym.str()));
  }
  for (const std::string& name : cached) {
    Result<bool> leq = cdb_.lattice.Leq(written_level, name);
    const bool dominating = leq.ok() && leq.value();
    const Symbol sym = Symbol::Intern(name);

    // EVERY cached reduced program absorbs the Sigma splice, dominance
    // aside: tau translates the whole store into each level's program
    // (visibility is enforced by the dominance guards, not by
    // omission), so the sigma-span bookkeeping must track every write
    // or a later splice would cut the wrong clause range. For
    // non-dominating levels the spliced facts are inert - no guard at
    // that session level admits them - so their models, which cannot
    // have changed, are left untouched.
    auto rp_it = caches_->reduced.find(sym);
    if (rp_it != caches_->reduced.end()) {
      ReducedProgram& rp = rp_it->second;
      Result<SigmaFactDelta> spliced = [&]() -> Result<SigmaFactDelta> {
        trace::Span span(trace::Stage::kDeltaReduce);
        MULTILOG_ASSIGN_OR_RETURN(SigmaFactDelta d,
                                  TranslateSigmaFact(fact, rp));
        if (retract) {
          EraseSigmaFact(&rp, sigma_index);
        } else {
          AppendSigmaFact(&rp, d);
        }
        return d;
      }();
      if (!spliced.ok()) {
        // The maintained program is stale; drop the whole level and
        // let the next query rebuild it from Sigma.
        dropped += caches_->reduced.erase(sym);
        dropped += caches_->models.erase(sym);
        caches_->raw_models.erase(sym);
        dropped += caches_->interpreters.erase(sym);
        caches_->fallback_recomputes.fetch_add(1, kRelaxed);
        result->invalidated_levels.push_back(name);
        continue;
      }
      if (!dominating) continue;

      // Tabled interpreter state cannot absorb a retraction (and an
      // assert invalidates its negative answers); rebuild lazily.
      dropped += caches_->interpreters.erase(sym);

      auto raw_it = caches_->raw_models.find(sym);
      auto model_it = caches_->models.find(sym);
      if (raw_it == caches_->raw_models.end() ||
          model_it == caches_->models.end()) {
        // Program maintained, but no live model yet (the first query
        // at this level evaluates the maintained program from
        // scratch). Drop any orphaned half of the pair.
        dropped += caches_->models.erase(sym);
        caches_->raw_models.erase(sym);
        result->maintained_levels.push_back(name);
        continue;
      }
      const std::vector<Atom> no_atoms;
      const std::vector<Atom>& adds = retract ? no_atoms : spliced->edb;
      const std::vector<Atom>& removes = retract ? spliced->edb : no_atoms;
      Result<datalog::DeltaChanges> changes =
          [&]() -> Result<datalog::DeltaChanges> {
        trace::Span span(trace::Stage::kDeltaEval);
        return datalog::ApplyDelta(rp.program, adds, removes,
                                   &raw_it->second, options_.eval);
      }();
      if (!changes.ok()) {
        // The raw model may be mid-surgery - discard both forms; the
        // maintained program stays (it is exact either way).
        caches_->raw_models.erase(sym);
        dropped += caches_->models.erase(sym);
        caches_->fallback_recomputes.fetch_add(1, kRelaxed);
        result->invalidated_levels.push_back(name);
        continue;
      }

      {
        // Regroup the served view: the net raw changes decode 1:1 (the
        // specialization rewrite is injective), so the decoded model is
        // maintained in O(|added| + |removed|).
        trace::Span span(trace::Stage::kRegroup);
        Model& decoded = model_it->second;
        std::vector<Atom> decoded_removed;
        decoded_removed.reserve(changes->removed.size());
        for (const Atom& a : changes->removed) {
          decoded_removed.push_back(DecodeFact(a));
        }
        decoded.RemoveFacts(decoded_removed);
        for (const Atom& a : changes->added) decoded.Insert(DecodeFact(a));
      }
      caches_->deltas_applied.fetch_add(1, kRelaxed);
      result->maintained_levels.push_back(name);
      continue;
    }

    if (!dominating) continue;
    // No maintained program. A model without its program cannot be
    // maintained (should not happen - models are built through
    // ReducedLocked - but stay safe); the interpreter is dropped as
    // always.
    const uint64_t interp_dropped = caches_->interpreters.erase(sym);
    dropped += interp_dropped;
    const uint64_t had_model = caches_->models.erase(sym);
    caches_->raw_models.erase(sym);
    dropped += had_model;
    if (had_model > 0) {
      caches_->fallback_recomputes.fetch_add(1, kRelaxed);
    }
    if (had_model + interp_dropped > 0) {
      result->invalidated_levels.push_back(name);
    }
  }
  caches_->invalidation_events.fetch_add(1, kRelaxed);
  caches_->cache_entries_invalidated.fetch_add(dropped, kRelaxed);
}

std::vector<std::string> Engine::InvalidateDominating(
    const std::string& written_level) {
  // Soundness: level l's reduced program/model/interpreter are computed
  // from the facts visible at l, i.e. those at levels <= l. A write at
  // level s changes l's view iff s <= l; incomparable and strictly
  // lower cached levels therefore keep their entries verbatim.
  std::vector<std::string> invalidated;
  uint64_t dropped = 0;
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  std::set<std::string> cached;
  for (const auto& [sym, unused] : caches_->reduced) {
    cached.insert(std::string(sym.str()));
  }
  for (const auto& [sym, unused] : caches_->models) {
    cached.insert(std::string(sym.str()));
  }
  for (const auto& [sym, unused] : caches_->interpreters) {
    cached.insert(std::string(sym.str()));
  }
  for (const std::string& name : cached) {
    Result<bool> leq = cdb_.lattice.Leq(written_level, name);
    if (!leq.ok() || !leq.value()) continue;
    const Symbol sym = Symbol::Intern(name);
    dropped += caches_->reduced.erase(sym);
    dropped += caches_->models.erase(sym);
    caches_->raw_models.erase(sym);
    dropped += caches_->interpreters.erase(sym);
    invalidated.push_back(name);
  }
  caches_->invalidation_events.fetch_add(1, kRelaxed);
  caches_->cache_entries_invalidated.fetch_add(dropped, kRelaxed);
  return invalidated;
}

Status Engine::Checkpoint() {
  std::unique_lock<std::shared_mutex> db_lock(caches_->db_mu);
  if (storage_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires a durable engine (construct via FromStorage)");
  }
  MULTILOG_RETURN_IF_ERROR(storage_->Checkpoint(cdb_.db.ToString()));
  caches_->checkpoints.fetch_add(1, kRelaxed);
  return Status::OK();
}

std::string Engine::DumpSource(uint64_t* at_seqno) {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  if (at_seqno != nullptr) {
    *at_seqno = caches_->applied_seqno.load(kRelaxed);
  }
  return cdb_.db.ToString();
}

StorageCounters Engine::StorageStats() const {
  std::shared_lock<std::shared_mutex> db_lock(caches_->db_mu);
  StorageCounters c;
  c.applied_seqno = caches_->applied_seqno.load(kRelaxed);
  if (storage_ == nullptr) return c;
  c.attached = true;
  c.dir = storage_->dir();
  c.next_seqno = storage_->next_seqno();
  c.snapshot_seqno = storage_->snapshot_seqno();
  c.wal_records = storage_->wal_records();
  c.wal_bytes = storage_->wal_bytes();
  c.checkpoints = storage_->checkpoints();
  c.group_syncs = storage_->group_syncs();
  if (!storage_->recovered().data_loss.ok()) {
    c.recovery_data_loss = storage_->recovered().data_loss.ToString();
  }
  return c;
}

EngineCounters Engine::Counters() const {
  EngineCounters c;
  c.cache_hits = caches_->cache_hits.load(kRelaxed);
  c.cache_misses = caches_->cache_misses.load(kRelaxed);
  c.invalidation_events = caches_->invalidation_events.load(kRelaxed);
  c.cache_entries_invalidated =
      caches_->cache_entries_invalidated.load(kRelaxed);
  c.asserts_ok = caches_->asserts_ok.load(kRelaxed);
  c.retracts_ok = caches_->retracts_ok.load(kRelaxed);
  c.writes_rejected = caches_->writes_rejected.load(kRelaxed);
  c.checkpoints = caches_->checkpoints.load(kRelaxed);
  c.deltas_applied = caches_->deltas_applied.load(kRelaxed);
  c.fallback_recomputes = caches_->fallback_recomputes.load(kRelaxed);
  c.plan_hits = caches_->plan_hits.load(kRelaxed);
  c.plan_misses = caches_->plan_misses.load(kRelaxed);
  c.magic_fallbacks = caches_->magic_fallbacks.load(kRelaxed);
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    c.live_models = caches_->models.size();
  }
  return c;
}

}  // namespace multilog::ml
