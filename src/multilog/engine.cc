#include "multilog/engine.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "multilog/parser.h"

namespace multilog::ml {

namespace {

using datalog::Atom;
using datalog::Model;
using datalog::Substitution;

/// Rewrites a level-specialized fact (rel__u(P,K,A,V,C)) back to its
/// generic form (rel(P,K,A,V,C,u)). Non-specialized facts pass through.
Atom DecodeFact(const Atom& fact) {
  static const struct {
    const char* prefix;
    size_t level_pos;
  } kTargets[] = {
      {"rel__", 5}, {"bel__", 5}, {"vis__", 5}, {"overridden__", 4}};
  for (const auto& target : kTargets) {
    const std::string& name = fact.predicate();
    if (!StartsWith(name, target.prefix)) continue;
    std::string base(name.substr(0, std::string(target.prefix).size() - 2));
    std::string level = name.substr(std::string(target.prefix).size());
    std::vector<datalog::Term> args = fact.args();
    args.insert(args.begin() + static_cast<long>(target.level_pos),
                datalog::Term::Sym(level));
    return Atom(base, std::move(args));
  }
  return fact;
}

/// Removes bindings of don't-care variables (the parser's "_dc<n>"
/// placeholders for omitted classifications, Section 7) and deduplicates
/// the remaining answers, keeping proof alignment.
void StripDontCare(std::vector<Substitution>* answers,
                   std::vector<ProofPtr>* proofs) {
  std::set<std::string> seen;
  std::vector<Substitution> kept_answers;
  std::vector<ProofPtr> kept_proofs;
  for (size_t i = 0; i < answers->size(); ++i) {
    Substitution restricted;
    std::map<Symbol, datalog::Term> sorted(
        (*answers)[i].bindings().begin(), (*answers)[i].bindings().end());
    for (const auto& [var, term] : sorted) {
      if (StartsWith(var.str(), "_dc")) continue;
      restricted.Bind(var, (*answers)[i].Apply(datalog::Term::Var(var)));
    }
    if (!seen.insert(restricted.ToString()).second) continue;
    kept_answers.push_back(std::move(restricted));
    if (proofs != nullptr && i < proofs->size()) {
      kept_proofs.push_back((*proofs)[i]);
    }
  }
  *answers = std::move(kept_answers);
  if (proofs != nullptr) *proofs = std::move(kept_proofs);
}

std::string AnswersKey(const std::vector<Substitution>& answers) {
  std::string key;
  for (const Substitution& s : answers) {
    key += s.ToString();
    key += ";";
  }
  return key;
}

}  // namespace

Result<Engine> Engine::FromSource(std::string_view source,
                                  EngineOptions options) {
  MULTILOG_ASSIGN_OR_RETURN(Database db, ParseMultiLog(source));
  return FromDatabase(std::move(db), options);
}

Result<Engine> Engine::FromDatabase(Database db, EngineOptions options) {
  MULTILOG_ASSIGN_OR_RETURN(
      CheckedDatabase cdb,
      CheckDatabase(std::move(db), options.require_consistency));
  return Engine(std::move(cdb), options);
}

Result<const ReducedProgram*> Engine::Reduced(const std::string& user_level) {
  const Symbol level = Symbol::Intern(user_level);
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->reduced.find(level);
    if (it != caches_->reduced.end()) return &it->second;
  }
  // Build outside any lock (Reduce only reads the immutable cdb_), then
  // publish; on a race the first insert wins and both callers see it.
  MULTILOG_ASSIGN_OR_RETURN(ReducedProgram rp,
                            Reduce(cdb_, user_level, options_.reduction));
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  auto [it, inserted] = caches_->reduced.try_emplace(level, std::move(rp));
  return &it->second;
}

Result<const datalog::Model*> Engine::ReducedModel(
    const std::string& user_level, const CancelToken* cancel) {
  const Symbol level = Symbol::Intern(user_level);
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->models.find(level);
    if (it != caches_->models.end()) return &it->second;
  }
  // The reduced program is immutable once published, so evaluation can
  // run outside the lock; racing evaluations of the same level produce
  // identical models (the parallel merge is deterministic) and the
  // first publication wins. A cancelled evaluation returns before the
  // publication point, so no partial model is ever cached.
  MULTILOG_ASSIGN_OR_RETURN(const ReducedProgram* rp, Reduced(user_level));
  datalog::EvalOptions eval = options_.eval;
  eval.cancel = cancel;
  MULTILOG_ASSIGN_OR_RETURN(Model raw, datalog::Evaluate(rp->program, eval));
  Model decoded;
  for (const std::string& pred : raw.Predicates()) {
    for (const Atom& fact : raw.FactsFor(pred)) {
      decoded.Insert(DecodeFact(fact));
    }
  }
  std::unique_lock<std::shared_mutex> lock(caches_->mu);
  auto [it, inserted] = caches_->models.try_emplace(level, std::move(decoded));
  return &it->second;
}

Result<Engine::InterpreterSlot*> Engine::GetInterpreterSlot(
    const std::string& user_level) {
  const Symbol level = Symbol::Intern(user_level);
  InterpreterSlot* slot = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(caches_->mu);
    auto it = caches_->interpreters.find(level);
    if (it != caches_->interpreters.end()) slot = &it->second;
  }
  if (slot == nullptr) {
    std::unique_lock<std::shared_mutex> lock(caches_->mu);
    slot = &caches_->interpreters[level];  // try_emplace; node is stable
  }
  std::lock_guard<std::mutex> init(slot->mu);
  if (slot->interp == nullptr) {
    MULTILOG_ASSIGN_OR_RETURN(
        Interpreter interp,
        Interpreter::Create(&cdb_, user_level, options_.interpreter));
    slot->interp = std::make_unique<Interpreter>(std::move(interp));
  }
  return slot;
}

Result<Interpreter*> Engine::OperationalInterpreter(
    const std::string& user_level) {
  MULTILOG_ASSIGN_OR_RETURN(InterpreterSlot * slot,
                            GetInterpreterSlot(user_level));
  return slot->interp.get();
}

Result<QueryResult> Engine::Query(const std::vector<MlLiteral>& goal,
                                  const std::string& user_level,
                                  ExecMode mode, const CancelToken* cancel) {
  MULTILOG_RETURN_IF_ERROR(cdb_.lattice.Index(user_level).status());
  // A pre-expired deadline fails fast, before any cached work is
  // consulted (the server's "deadline_ms: 0" probe relies on this).
  if (cancel != nullptr && cancel->Cancelled()) {
    return Status::DeadlineExceeded("query cancelled (deadline exceeded)");
  }

  QueryResult operational;
  if (mode == ExecMode::kOperational || mode == ExecMode::kCheckBoth) {
    MULTILOG_ASSIGN_OR_RETURN(InterpreterSlot * slot,
                              GetInterpreterSlot(user_level));
    // Solving mutates the interpreter's call tables, so hold the
    // level's mutex for the duration; distinct levels run in parallel.
    std::lock_guard<std::mutex> lock(slot->mu);
    MULTILOG_ASSIGN_OR_RETURN(std::vector<Interpreter::Answer> answers,
                              slot->interp->Solve(goal, cancel));
    for (Interpreter::Answer& a : answers) {
      operational.answers.push_back(std::move(a.subst));
      operational.proofs.push_back(std::move(a.proof));
    }
    StripDontCare(&operational.answers, &operational.proofs);
    if (mode == ExecMode::kOperational) return operational;
  }

  QueryResult reduced;
  {
    // Evaluate the cached model, then match each (possibly specialized)
    // goal variant against it, unioning the answers.
    MULTILOG_ASSIGN_OR_RETURN(const ReducedProgram* rp, Reduced(user_level));
    MULTILOG_ASSIGN_OR_RETURN(const Model* model,
                              ReducedModel(user_level, cancel));

    // The decoded model holds generic facts; match the *generic* goal
    // against it (specialization only matters for evaluation).
    MULTILOG_ASSIGN_OR_RETURN(std::vector<datalog::Literal> generic,
                              TranslateGoalGeneric(goal, user_level));
    (void)rp;
    MULTILOG_ASSIGN_OR_RETURN(std::vector<Substitution> answers,
                              datalog::QueryModel(*model, generic, cancel));
    reduced.answers = std::move(answers);
    StripDontCare(&reduced.answers, nullptr);
  }
  if (mode == ExecMode::kReduced) return reduced;

  // kCheckBoth: Theorem 6.1 as an executable assertion.
  std::vector<Substitution> a = operational.answers;
  std::vector<Substitution> b = reduced.answers;
  auto by_text = [](const Substitution& x, const Substitution& y) {
    return x.ToString() < y.ToString();
  };
  std::sort(a.begin(), a.end(), by_text);
  std::sort(b.begin(), b.end(), by_text);
  if (AnswersKey(a) != AnswersKey(b)) {
    std::string msg =
        "operational and reduced semantics disagree (Theorem 6.1 "
        "violation)\noperational:\n";
    for (const Substitution& s : a) msg += "  " + s.ToString() + "\n";
    msg += "reduced:\n";
    for (const Substitution& s : b) msg += "  " + s.ToString() + "\n";
    return Status::Internal(msg);
  }
  return operational;
}

Result<QueryResult> Engine::QuerySource(std::string_view goal_text,
                                        const std::string& user_level,
                                        ExecMode mode,
                                        const CancelToken* cancel) {
  MULTILOG_ASSIGN_OR_RETURN(std::vector<MlLiteral> goal,
                            ParseMlGoal(goal_text));
  return Query(goal, user_level, mode, cancel);
}

Result<std::vector<QueryResult>> Engine::RunStoredQueries(
    const std::string& user_level, ExecMode mode,
    const CancelToken* cancel) {
  std::vector<QueryResult> out;
  for (const std::vector<MlLiteral>& goal : cdb_.db.queries) {
    MULTILOG_ASSIGN_OR_RETURN(QueryResult r,
                              Query(goal, user_level, mode, cancel));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace multilog::ml
