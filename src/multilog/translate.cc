#include "multilog/translate.h"

#include <algorithm>

#include "common/str_util.h"

namespace multilog::ml {

namespace {

Term ValueToTerm(const mls::Value& v) {
  if (v.is_null()) return NullTerm();
  if (v.is_int()) return Term::Int(v.int_value());
  return Term::Sym(ToLower(v.str()));
}

std::string TermToText(const Term& t) { return t.ToString(); }

/// Key term for a tuple: the value itself for single-attribute keys, a
/// compound `key(v1, ..., vk)` for composite keys (the F-logic-style
/// device the paper's Section 7 suggests).
Term KeyTerm(const mls::Relation& relation, const mls::Tuple& t) {
  const size_t key_arity = relation.scheme().key_arity();
  if (key_arity == 1) return ValueToTerm(t.key_cell().value);
  std::vector<Term> parts;
  parts.reserve(key_arity);
  for (size_t i = 0; i < key_arity; ++i) {
    parts.push_back(ValueToTerm(t.cells[i].value));
  }
  return Term::Fn("key", std::move(parts));
}

}  // namespace

Result<Database> EncodeRelation(const mls::Relation& relation,
                                const std::string& predicate) {
  Database db;

  // Lambda: the relation's lattice.
  for (const std::string& level : relation.lat().names()) {
    db.AddClause(MlClause{MlAtom(LAtom{Term::Sym(level)}), {}});
  }
  for (const auto& [low, high] : relation.lat().CoverEdges()) {
    db.AddClause(
        MlClause{MlAtom(HAtom{Term::Sym(low), Term::Sym(high)}), {}});
  }

  // Sigma: one molecular fact per tuple; the key attribute maps to the
  // key itself (the paper's AK convention).
  const mls::Scheme& scheme = relation.scheme();
  for (const mls::Tuple& t : relation.tuples()) {
    MAtom molecule{Term::Sym(t.tc), ToLower(predicate),
                   KeyTerm(relation, t), {}};
    for (size_t i = 0; i < t.cells.size(); ++i) {
      molecule.cells.push_back(
          MCell{ToLower(scheme.attributes()[i].name),
                Term::Sym(t.cells[i].classification),
                ValueToTerm(t.cells[i].value)});
    }
    db.AddClause(MlClause{MlAtom(std::move(molecule)), {}});
  }
  return db;
}

bool CellFact::operator<(const CellFact& other) const {
  if (key != other.key) return key < other.key;
  if (attribute != other.attribute) return attribute < other.attribute;
  if (value != other.value) return value < other.value;
  return classification < other.classification;
}

std::string CellFact::ToString() const {
  return key + "." + attribute + " = " + value + " / " + classification;
}

std::vector<CellFact> RelationCells(const mls::Relation& relation) {
  std::vector<CellFact> out;
  const mls::Scheme& scheme = relation.scheme();
  for (const mls::Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < t.cells.size(); ++i) {
      out.push_back(CellFact{
          TermToText(KeyTerm(relation, t)),
          ToLower(scheme.attributes()[i].name),
          TermToText(ValueToTerm(t.cells[i].value)),
          t.cells[i].classification});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<CellFact>> BelievedCells(Engine* engine,
                                            const std::string& predicate,
                                            const std::string& level,
                                            const std::string& mode) {
  MULTILOG_ASSIGN_OR_RETURN(const datalog::Model* model,
                            engine->ReducedModel(level));
  std::vector<CellFact> out;
  for (const datalog::Atom& fact : model->FactsFor("bel/7")) {
    const auto& a = fact.args();
    if (!a[0].IsSymbol() || a[0].name() != ToLower(predicate)) continue;
    if (!a[5].IsSymbol() || a[5].name() != level) continue;
    if (!a[6].IsSymbol() || a[6].name() != mode) continue;
    out.push_back(CellFact{a[1].ToString(), a[2].ToString(), a[3].ToString(),
                           a[4].ToString()});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

mls::Value TermToValue(const Term& t) {
  if (IsNullTerm(t)) return mls::Value::NullValue();
  if (t.IsInt()) return mls::Value::Int(t.int_value());
  return mls::Value::Str(t.symbol());  // no re-interning
}

}  // namespace

Result<mls::Relation> DecodeRelation(const CheckedDatabase& cdb,
                                     const std::string& predicate) {
  const std::string wanted = ToLower(predicate);

  // Collect the ground molecular facts of the predicate.
  std::vector<const MAtom*> molecules;
  for (const MlClause& clause : cdb.db.sigma) {
    if (!clause.IsFact()) continue;
    const auto* m = std::get_if<MAtom>(&clause.head);
    if (m == nullptr || m->predicate != wanted) continue;
    bool ground = m->level.IsSymbol() && m->key.IsGround();
    for (const MCell& c : m->cells) {
      ground = ground && c.classification.IsSymbol() && c.value.IsGround();
    }
    if (!ground) {
      return Status::InvalidProgram(
          "cannot decode non-ground m-fact " + m->ToString());
    }
    molecules.push_back(m);
  }
  if (molecules.empty()) {
    return Status::NotFound("no molecular facts for predicate '" +
                            predicate + "'");
  }

  // Infer the scheme from the first molecule: attribute order, and the
  // key attribute(s) - cells whose values match the key term.
  const MAtom& first = *molecules.front();
  const std::vector<std::string> minimal = cdb.lattice.MinimalElements();
  const std::vector<std::string> maximal = cdb.lattice.MaximalElements();
  if (minimal.empty()) {
    return Status::InvalidProgram("database declares no security levels");
  }

  std::vector<mls::AttributeDef> attributes;
  for (const MCell& c : first.cells) {
    attributes.push_back(
        mls::AttributeDef{c.attribute, minimal.front(), maximal.front()});
  }

  std::vector<std::string> key;
  if (first.key.IsCompound() && first.key.name() == "key") {
    for (const Term& part : first.key.args()) {
      for (const MCell& c : first.cells) {
        if (c.value == part) {
          key.push_back(c.attribute);
          break;
        }
      }
    }
    if (key.size() != first.key.args().size()) {
      return Status::InvalidProgram(
          "composite key components of " + first.ToString() +
          " do not all match cells");
    }
  } else {
    for (const MCell& c : first.cells) {
      if (c.value == first.key) {
        key.push_back(c.attribute);
        break;
      }
    }
    if (key.empty()) {
      return Status::InvalidProgram("no cell of " + first.ToString() +
                                    " carries the key value");
    }
  }

  MULTILOG_ASSIGN_OR_RETURN(
      mls::Scheme scheme,
      mls::Scheme::CreateComposite(predicate, attributes, key,
                                   cdb.lattice));
  mls::Relation relation(std::move(scheme), &cdb.lattice);

  // Load every molecule, reordering cells to the scheme's order.
  for (const MAtom* m : molecules) {
    mls::Tuple t;
    t.tc = m->level.name();
    for (const mls::AttributeDef& attr : relation.scheme().attributes()) {
      const MCell* cell = nullptr;
      for (const MCell& c : m->cells) {
        if (c.attribute == attr.name) {
          cell = &c;
          break;
        }
      }
      if (cell == nullptr) {
        return Status::InvalidProgram("m-fact " + m->ToString() +
                                      " is missing attribute '" + attr.name +
                                      "'");
      }
      t.cells.push_back(
          mls::Cell{TermToValue(cell->value), cell->classification.name()});
    }
    MULTILOG_RETURN_IF_ERROR(
        relation.InsertTuple(std::move(t))
            .WithContext("decoding " + m->ToString()));
  }
  return relation;
}

}  // namespace multilog::ml
