#include "multilog/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>

namespace multilog::ml {

namespace {

class MlParser {
 public:
  explicit MlParser(std::string_view source) : src_(source) {}

  Result<Database> ParseProgram() {
    Database db;
    SkipWhitespaceAndComments();
    while (!AtEnd()) {
      if (TryConsume("?-")) {
        MULTILOG_ASSIGN_OR_RETURN(std::vector<MlLiteral> goal, ParseBody());
        MULTILOG_RETURN_IF_ERROR(Expect("."));
        db.queries.push_back(std::move(goal));
      } else {
        MULTILOG_ASSIGN_OR_RETURN(MlAtom head, ParseMlAtom());
        if (std::holds_alternative<BAtom>(head)) {
          return Error("b-atoms may not appear in a clause head");
        }
        if (std::holds_alternative<CAtom>(head)) {
          return Error("comparisons may not appear in a clause head");
        }
        std::vector<MlLiteral> body;
        if (TryConsume(":-") || TryConsume("<-")) {
          MULTILOG_ASSIGN_OR_RETURN(body, ParseBody());
        }
        MULTILOG_RETURN_IF_ERROR(Expect("."));
        db.AddClause(MlClause{std::move(head), std::move(body)});
      }
      SkipWhitespaceAndComments();
    }
    return db;
  }

  Result<std::vector<MlLiteral>> ParseGoalOnly() {
    SkipWhitespaceAndComments();
    TryConsume("?-");
    MULTILOG_ASSIGN_OR_RETURN(std::vector<MlLiteral> goal, ParseBody());
    TryConsume(".");
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing input after goal");
    return goal;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else if (c == '%' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool TryConsume(std::string_view token) {
    SkipWhitespaceAndComments();
    if (src_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status Expect(std::string_view token) {
    if (!TryConsume(token)) {
      return Error("expected '" + std::string(token) + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " +
                              message);
  }

  Result<std::string> ParseIdentifier() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    if (AtEnd() || !(std::isalpha(static_cast<unsigned char>(Peek())) ||
                     Peek() == '_')) {
      return Error("expected identifier");
    }
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      ++pos_;
    }
    return std::string(src_.substr(start, pos_ - start));
  }

  Result<Term> ParseTerm() {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("expected term");
    char c = Peek();

    if (c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != '\'') ++pos_;
      if (AtEnd()) return Error("unterminated quoted constant");
      std::string text(src_.substr(start, pos_ - start));
      ++pos_;
      return Term::Sym(std::move(text));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      const std::string digits(src_.substr(start, pos_ - start));
      errno = 0;
      const long long value = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Error("integer literal '" + digits + "' out of range");
      }
      return Term::Int(value);
    }
    MULTILOG_ASSIGN_OR_RETURN(std::string id, ParseIdentifier());
    bool is_var =
        std::isupper(static_cast<unsigned char>(id[0])) || id[0] == '_';
    if (is_var) return Term::Var(std::move(id));
    SkipWhitespaceAndComments();
    if (Peek() == '(') {
      ++pos_;
      std::vector<Term> args;
      MULTILOG_ASSIGN_OR_RETURN(Term first, ParseTerm());
      args.push_back(std::move(first));
      while (TryConsume(",")) {
        MULTILOG_ASSIGN_OR_RETURN(Term next, ParseTerm());
        args.push_back(std::move(next));
      }
      MULTILOG_RETURN_IF_ERROR(Expect(")"));
      return Term::Fn(std::move(id), std::move(args));
    }
    return Term::Sym(std::move(id));
  }

  /// Parses `attr -class-> value` or `attr -> value` (don't care).
  Result<MCell> ParseCell() {
    MULTILOG_ASSIGN_OR_RETURN(std::string attribute, ParseIdentifier());
    SkipWhitespaceAndComments();
    if (!TryConsume("-")) {
      return Error("expected '->' or '-class->' after attribute '" +
                   attribute + "'");
    }
    Term classification = Term::Var("_dc" + std::to_string(dont_care_++));
    if (!TryConsume(">")) {
      MULTILOG_ASSIGN_OR_RETURN(classification, ParseTerm());
      MULTILOG_RETURN_IF_ERROR(Expect("-"));
      MULTILOG_RETURN_IF_ERROR(Expect(">"));
    }
    MULTILOG_ASSIGN_OR_RETURN(Term value, ParseTerm());
    return MCell{std::move(attribute), std::move(classification),
                 std::move(value)};
  }

  /// Parses the bracketed part of an m-atom after the level term:
  /// `[p(k : cell (,|;) cell ...)]`, then an optional `<< mode`.
  Result<MlAtom> ParseMAtomTail(Term level) {
    MULTILOG_RETURN_IF_ERROR(Expect("["));
    MULTILOG_ASSIGN_OR_RETURN(std::string predicate, ParseIdentifier());
    MULTILOG_RETURN_IF_ERROR(Expect("("));
    MULTILOG_ASSIGN_OR_RETURN(Term key, ParseTerm());
    MULTILOG_RETURN_IF_ERROR(Expect(":"));

    std::vector<MCell> cells;
    MULTILOG_ASSIGN_OR_RETURN(MCell first, ParseCell());
    cells.push_back(std::move(first));
    while (TryConsume(",") || TryConsume(";")) {
      MULTILOG_ASSIGN_OR_RETURN(MCell next, ParseCell());
      cells.push_back(std::move(next));
    }
    MULTILOG_RETURN_IF_ERROR(Expect(")"));
    MULTILOG_RETURN_IF_ERROR(Expect("]"));

    MAtom matom{std::move(level), std::move(predicate), std::move(key),
                std::move(cells)};
    if (TryConsume("<<")) {
      MULTILOG_ASSIGN_OR_RETURN(std::string mode, ParseIdentifier());
      bool is_var = std::isupper(static_cast<unsigned char>(mode[0])) ||
                    mode[0] == '_';
      Term mode_term =
          is_var ? Term::Var(std::move(mode)) : Term::Sym(std::move(mode));
      return MlAtom(BAtom{std::move(matom), std::move(mode_term)});
    }
    return MlAtom(std::move(matom));
  }

  /// Tries to read a comparison operator ('<' is only an operator when
  /// not part of the '<-' rule arrow and '<<' belief operator).
  std::optional<datalog::Comparison> TryComparisonOp() {
    SkipWhitespaceAndComments();
    if (TryConsume("!=")) return datalog::Comparison::kNe;
    if (TryConsume("<=")) return datalog::Comparison::kLe;
    if (TryConsume(">=")) return datalog::Comparison::kGe;
    if (Peek() == '<' && Peek(1) != '-' && Peek(1) != '<') {
      ++pos_;
      return datalog::Comparison::kLt;
    }
    if (TryConsume(">")) return datalog::Comparison::kGt;
    if (TryConsume("=")) return datalog::Comparison::kEq;
    return std::nullopt;
  }

  Result<MlAtom> ParseMlAtom() {
    SkipWhitespaceAndComments();
    MULTILOG_ASSIGN_OR_RETURN(Term first, ParseTerm());

    // `term[...]` is an m-atom (or b-atom).
    SkipWhitespaceAndComments();
    if (Peek() == '[') {
      if (!(first.IsSymbol() || first.IsVariable())) {
        return Error("m-atom level must be a symbol or variable");
      }
      return ParseMAtomTail(std::move(first));
    }

    // `term OP term` is a comparison builtin.
    if (std::optional<datalog::Comparison> op = TryComparisonOp()) {
      MULTILOG_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return MlAtom(CAtom{*op, std::move(first), std::move(rhs)});
    }

    // level/1 and order/2 compounds are l-/h-atoms; other compounds and
    // bare symbols are p-atoms.
    if (first.IsCompound()) {
      if (first.name() == "level" && first.args().size() == 1) {
        return MlAtom(LAtom{first.args()[0]});
      }
      if (first.name() == "order" && first.args().size() == 2) {
        return MlAtom(HAtom{first.args()[0], first.args()[1]});
      }
      return MlAtom(PAtom(first.name(), first.args()));
    }
    if (first.IsSymbol()) {
      return MlAtom(PAtom(first.name(), {}));
    }
    return Error("expected an atom");
  }

  /// Parses `not atom` or an atom. Negation is restricted to p-, l- and
  /// h-atoms (see MlLiteral's doc comment).
  Result<MlLiteral> ParseLiteral() {
    SkipWhitespaceAndComments();
    bool negated = false;
    size_t save = pos_;
    if (TryConsume("not") &&
        (AtEnd() || (!std::isalnum(static_cast<unsigned char>(Peek())) &&
                     Peek() != '_'))) {
      negated = true;
    } else {
      pos_ = save;
    }
    MULTILOG_ASSIGN_OR_RETURN(MlAtom atom, ParseMlAtom());
    if (negated && (std::holds_alternative<MAtom>(atom) ||
                    std::holds_alternative<BAtom>(atom))) {
      return Error(
          "negation of secured atoms (m-/b-atoms) is not supported");
    }
    if (negated && std::holds_alternative<CAtom>(atom)) {
      return Error("negate the comparison operator instead of the atom");
    }
    return MlLiteral{std::move(atom), negated};
  }

  Result<std::vector<MlLiteral>> ParseBody() {
    std::vector<MlLiteral> body;
    MULTILOG_ASSIGN_OR_RETURN(MlLiteral first, ParseLiteral());
    body.push_back(std::move(first));
    while (TryConsume(",")) {
      MULTILOG_ASSIGN_OR_RETURN(MlLiteral next, ParseLiteral());
      body.push_back(std::move(next));
    }
    return body;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int dont_care_ = 0;
};

}  // namespace

Result<Database> ParseMultiLog(std::string_view source) {
  return MlParser(source).ParseProgram();
}

Result<std::vector<MlLiteral>> ParseMlGoal(std::string_view source) {
  return MlParser(source).ParseGoalOnly();
}

}  // namespace multilog::ml
