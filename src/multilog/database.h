#ifndef MULTILOG_MULTILOG_DATABASE_H_
#define MULTILOG_MULTILOG_DATABASE_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "lattice/lattice.h"
#include "multilog/ast.h"

namespace multilog::ml {

/// Evaluates the Lambda component as a Datalog program (l- and h-clauses
/// may have bodies, themselves restricted to l-/h-atoms - the first
/// admissibility condition of Definition 5.3) and builds the security
/// lattice from the derived level/1 and order/2 facts. Fails when a
/// Lambda clause depends on non-Lambda atoms or when the derived order
/// is not a partial order (third admissibility condition).
Result<lattice::SecurityLattice> ExtractLattice(const Database& db);

/// Definition 5.3: Lambda is self-contained, its meaning is a partial
/// order, and every ground security label appearing in Sigma (in level
/// or classification position, in heads and bodies) is asserted by
/// Lambda. `lat` must come from ExtractLattice(db).
Status CheckAdmissible(const Database& db,
                       const lattice::SecurityLattice& lat);

/// Definition 5.4 on the stored (ground, bodyless, molecular) Sigma
/// facts - the m-predicates whose tuple identity is syntactically
/// available:
///  - every molecular fact carries a key cell `a -c-> k` whose value is
///    the key itself (the paper's AK convention); its classification is
///    c_AK;
///  - entity integrity: k != null, every other classification dominates
///    c_AK;
///  - null integrity: nulls are classified at c_AK;
///  - polyinstantiation integrity: (p, k, c_AK, a, c_i) -> v_i across
///    all facts.
/// Derived m-atoms are not checked, mirroring relational practice where
/// integrity is enforced on base tables, not on views.
Status CheckConsistent(const Database& db,
                       const lattice::SecurityLattice& lat);

/// Definition 5.4 at the write boundary: validates one ground molecular
/// fact that is about to enter Sigma, *before* it is logged or applied.
///  - the fact must be fully ground and carry a key cell (the AK
///    convention) - unlike CheckConsistent, which skips facts without
///    syntactic tuple identity, a new write may not omit it;
///  - entity integrity: the key is non-null and every classification
///    dominates c_AK;
///  - null integrity: null cells are classified at c_AK;
///  - polyinstantiation integrity: (p, k, c_AK, a, c_i) -> v_i both
///    within the fact and against every stored ground fact that carries
///    a key cell. Stored facts without key cells (the paper's own
///    Figure 10 D1 omits them) are grandfathered: they cannot
///    participate in the functional dependency, so they cannot veto a
///    write - but nothing a checked write adds can collide with them
///    either, keeping the checked subset of Sigma consistent forever.
Status CheckFactIntegrity(const Database& db,
                          const lattice::SecurityLattice& lat,
                          const MAtom& fact);

/// An incrementally maintained index over the stored Sigma facts,
/// making the per-append work that used to scan all of Sigma - the
/// duplicate/existence check and the Definition 5.4 functional
/// dependency - touch only the written fact's key group. Two maps:
///
///  - fact counts, keyed by the fact's canonical source text (the same
///    text the WAL and DumpSource round-trip, so text equality is
///    structural equality): O(1) duplicate detection for asserts and
///    existence checks for retracts;
///  - key groups, keyed by "predicate|key": each group holds the
///    (c_AK, attribute, c_i) -> value functional dependency entries
///    contributed by the stored ground facts sharing that key, with a
///    contribution count so retracts can withdraw exactly their own
///    entries. Only ground molecular facts with a key cell participate
///    (the same subset CheckFactIntegrity checks; everything else is
///    grandfathered, exactly as before).
///
/// The owner (ml::Engine) must call Add/Remove for every fact entering
/// or leaving Sigma, under whatever lock serializes mutations.
class SigmaIndex {
 public:
  /// One functional-dependency entry: the value stored for a
  /// (c_AK, attribute, c_i) slot of the group's key, plus how many
  /// stored facts contribute it.
  struct FdEntry {
    Term value;
    size_t count = 0;
  };
  using Group = std::map<std::string, FdEntry>;

  SigmaIndex() = default;

  /// Indexes every stored fact of `db.sigma`.
  static SigmaIndex Build(const Database& db);

  void Add(const MAtom& fact);
  void Remove(const MAtom& fact);

  /// How many stored facts are structurally equal to `fact`.
  size_t FactCount(const MAtom& fact) const;

  /// The functional-dependency group for `fact`'s (predicate, key), or
  /// nullptr when no stored fact shares it. Group keys are
  /// "c_AK|attribute|c_i".
  const Group* GroupFor(const MAtom& fact) const;

  size_t group_count() const { return groups_.size(); }

 private:
  static std::string FactKey(const MAtom& fact);
  static std::string GroupKey(const MAtom& fact);

  std::unordered_map<std::string, size_t> fact_counts_;
  std::unordered_map<std::string, Group> groups_;
};

/// Definition 5.4 at the write boundary, O(key group): identical
/// semantics to the Database overload above, but the stored-Sigma side
/// of the polyinstantiation dependency comes from `index` instead of a
/// full scan. `index` must reflect exactly the current Sigma.
Status CheckFactIntegrity(const SigmaIndex& index,
                          const lattice::SecurityLattice& lat,
                          const MAtom& fact);

/// Convenience: parsed + lattice-extracted + admissibility-checked
/// database, ready for the interpreter or the reduction.
struct CheckedDatabase {
  Database db;
  lattice::SecurityLattice lattice;
};

/// Runs ExtractLattice + CheckAdmissible (+ CheckConsistent when
/// `require_consistency`; the paper "assumes only consistent databases"
/// but its own Figure 10 example D1 omits key cells, so the check is
/// optional).
Result<CheckedDatabase> CheckDatabase(Database db,
                                      bool require_consistency = false);

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_DATABASE_H_
