#include "multilog/reduction.h"

#include <algorithm>
#include <map>
#include <set>

#include "datalog/unify.h"

namespace multilog::ml {

namespace {

using datalog::Atom;
using datalog::Clause;
using datalog::Literal;
using datalog::Program;
using datalog::Substitution;

Term Sym(const std::string& s) { return Term::Sym(s); }
Term Var(const std::string& s) { return Term::Var(s); }

/// rel(p, k, a, v, c, l) for an atomic m-atom.
Atom RelAtom(const MAtom& m) {
  const MCell& cell = m.cells.front();
  return Atom("rel", {Sym(m.predicate), m.key, Sym(cell.attribute),
                      cell.value, cell.classification, m.level});
}

/// bel(p, k, a, v, c, l, m) for an atomic b-atom.
Atom BelAtom(const BAtom& b) {
  const MAtom& m = b.matom;
  const MCell& cell = m.cells.front();
  return Atom("bel", {Sym(m.predicate), m.key, Sym(cell.attribute),
                      cell.value, cell.classification, m.level, b.mode});
}

/// The lambda encoding: body occurrences of m- and b-atoms carry the
/// session guards dominate(l, u) and dominate(c, u).
void AppendGuards(const MAtom& m, const Term& user,
                  std::vector<Literal>* out) {
  out->push_back(Literal::Positive(Atom("dominate", {m.level, user})));
  out->push_back(Literal::Positive(
      Atom("dominate", {m.cells.front().classification, user})));
}

/// Which reserved predicates a p-atom may use in a body position.
/// `in_bel_clause`: the clause head is bel/7 (a user-defined belief
/// mode, Section 7) - such clauses get raw access to rel/6, since that
/// is precisely how the paper says user modes are written. `dominate` is
/// a harmless read-only lattice test and is always allowed. The engine
/// internals (vis, overridden, sdom) are never writable or readable.
Status CheckBodyPAtom(const PAtom& p, bool in_bel_clause) {
  const std::string& name = p.predicate();
  if (!IsReservedPredicate(name)) return Status::OK();
  if (name == "bel" || name == "dominate") return Status::OK();
  if (name == "rel" && in_bel_clause) return Status::OK();
  return Status::InvalidProgram("p-atom uses reserved predicate '" + name +
                                "'" +
                                (name == "rel"
                                     ? " (raw rel access is allowed only in "
                                       "bel/7 clause bodies)"
                                     : ""));
}

Status AppendBodyAtom(const MlLiteral& lit, const Term& user,
                      std::vector<Literal>* out,
                      bool in_bel_clause = false) {
  const MlAtom& atom = lit.atom;
  if (const auto* m = std::get_if<MAtom>(&atom)) {
    if (lit.negated) {
      return Status::InvalidProgram(
          "negation of secured atoms (m-/b-atoms) is not supported");
    }
    for (const MAtom& atomic : m->Atomize()) {
      out->push_back(Literal::Positive(RelAtom(atomic)));
      AppendGuards(atomic, user, out);
    }
    return Status::OK();
  }
  if (const auto* b = std::get_if<BAtom>(&atom)) {
    if (lit.negated) {
      return Status::InvalidProgram(
          "negation of secured atoms (m-/b-atoms) is not supported");
    }
    for (const MAtom& atomic : b->matom.Atomize()) {
      out->push_back(Literal::Positive(BelAtom(BAtom{atomic, b->mode})));
      AppendGuards(atomic, user, out);
    }
    return Status::OK();
  }
  auto emit = [&lit, out](Atom a) {
    out->push_back(lit.negated ? Literal::Negative(std::move(a))
                               : Literal::Positive(std::move(a)));
  };
  if (const auto* p = std::get_if<PAtom>(&atom)) {
    MULTILOG_RETURN_IF_ERROR(CheckBodyPAtom(*p, in_bel_clause));
    emit(*p);
    return Status::OK();
  }
  if (const auto* l = std::get_if<LAtom>(&atom)) {
    emit(Atom("level", {l->level}));
    return Status::OK();
  }
  if (const auto* c = std::get_if<CAtom>(&atom)) {
    out->push_back(Literal::Builtin(c->op, c->lhs, c->rhs));
    return Status::OK();
  }
  const auto& h = std::get<HAtom>(atom);
  emit(Atom("order", {h.low, h.high}));
  return Status::OK();
}

Result<std::vector<Clause>> TranslateClause(const MlClause& clause,
                                            const Term& user) {
  const auto* head_p = std::get_if<PAtom>(&clause.head);
  const bool in_bel_clause =
      head_p != nullptr && head_p->PredicateId() == "bel/7";

  std::vector<Literal> body;
  for (const MlLiteral& lit : clause.body) {
    MULTILOG_RETURN_IF_ERROR(AppendBodyAtom(lit, user, &body,
                                            in_bel_clause));
  }

  std::vector<Atom> heads;
  if (const auto* m = std::get_if<MAtom>(&clause.head)) {
    for (const MAtom& atomic : m->Atomize()) heads.push_back(RelAtom(atomic));
  } else if (const auto* p = std::get_if<PAtom>(&clause.head)) {
    if (IsReservedPredicate(p->predicate()) && p->predicate() != "bel") {
      return Status::InvalidProgram("p-clause defines reserved predicate '" +
                                    p->predicate() + "'");
    }
    heads.push_back(*p);
  } else if (const auto* l = std::get_if<LAtom>(&clause.head)) {
    heads.push_back(Atom("level", {l->level}));
  } else if (const auto* h = std::get_if<HAtom>(&clause.head)) {
    heads.push_back(Atom("order", {h->low, h->high}));
  } else {
    return Status::InvalidProgram("b-atom cannot head a clause");
  }

  std::vector<Clause> out;
  out.reserve(heads.size());
  for (Atom& head : heads) out.emplace_back(std::move(head), body);
  return out;
}

/// Level-argument position of a specialization target, or -1.
/// The reserved predicate ids are interned once.
int LevelPosition(const Atom& atom) {
  static const datalog::PredicateId kRel("rel/6");
  static const datalog::PredicateId kVis("vis/6");
  static const datalog::PredicateId kBel("bel/7");
  static const datalog::PredicateId kOverridden("overridden/5");
  const datalog::PredicateId id = atom.PredicateId();
  if (id == kRel || id == kVis) return 5;
  if (id == kBel) return 5;
  if (id == kOverridden) return 4;
  return -1;
}

/// Rewrites a specialization target into its per-level predicate, e.g.
/// rel(P,K,A,V,C,s) -> rel__s(P,K,A,V,C). The level position must hold a
/// ground symbol.
Result<Atom> SpecializeAtom(const Atom& atom, int pos) {
  const Term& level = atom.args()[pos];
  if (!level.IsSymbol()) {
    return Status::InvalidProgram(
        "cannot level-specialize " + atom.ToString() +
        ": level position is not a ground symbol");
  }
  std::vector<Term> args;
  for (int i = 0; i < static_cast<int>(atom.args().size()); ++i) {
    if (i != pos) args.push_back(atom.args()[i]);
  }
  return Atom(atom.predicate() + "__" + level.name(), std::move(args));
}

/// Statically evaluates ground dominate/sdom/level literals against the
/// lattice. Returns 1 (true), 0 (false), -1 (not statically known).
int StaticTruth(const lattice::SecurityLattice& lat, const Literal& lit) {
  if (lit.is_builtin()) return -1;
  static const datalog::PredicateId kDominate("dominate/2");
  static const datalog::PredicateId kSdom("sdom/2");
  static const datalog::PredicateId kLevel("level/1");
  const Atom& a = lit.atom();
  const datalog::PredicateId id = a.PredicateId();
  bool truth;
  if (id == kDominate && a.args()[0].IsSymbol() && a.args()[1].IsSymbol()) {
    truth = lat.Leq(a.args()[0].name(), a.args()[1].name()).value_or(false);
  } else if (id == kSdom && a.args()[0].IsSymbol() &&
             a.args()[1].IsSymbol()) {
    truth = lat.Lt(a.args()[0].name(), a.args()[1].name()).value_or(false);
  } else if (id == kLevel && a.args()[0].IsSymbol()) {
    truth = lat.Contains(a.args()[0].name());
  } else {
    return -1;
  }
  if (lit.negated()) truth = !truth;
  return truth ? 1 : 0;
}

/// Enumerates assignments of the clause's level-position variables over
/// the lattice's levels and emits the specialized copies, pruning
/// statically false guards.
Status SpecializeClause(const Clause& clause,
                        const lattice::SecurityLattice& lat,
                        Program* out) {
  // Collect level-position variables across head and body targets.
  // std::set<Symbol> iterates in lexicographic (resolved-name) order,
  // so the emitted clause order matches the string-keyed era exactly.
  std::set<Symbol> level_vars;
  auto collect = [&level_vars](const Atom& atom) {
    int pos = LevelPosition(atom);
    if (pos >= 0 && atom.args()[pos].IsVariable()) {
      level_vars.insert(atom.args()[pos].symbol());
    }
  };
  collect(clause.head());
  for (const Literal& lit : clause.body()) {
    if (!lit.is_builtin()) collect(lit.atom());
  }

  std::vector<Symbol> vars(level_vars.begin(), level_vars.end());
  std::vector<size_t> choice(vars.size(), 0);
  const std::vector<std::string>& levels = lat.names();

  // Odometer over level assignments (a single empty assignment when the
  // clause has no level variables).
  while (true) {
    Substitution subst;
    for (size_t i = 0; i < vars.size(); ++i) {
      subst.Bind(vars[i], Sym(levels[choice[i]]));
    }

    Atom head = subst.Apply(clause.head());
    std::vector<Literal> body;
    bool dropped = false;
    for (const Literal& lit : clause.body()) {
      Literal applied = subst.Apply(lit);
      int truth = StaticTruth(lat, applied);
      if (truth == 0) {
        dropped = true;
        break;
      }
      if (truth == 1) continue;  // statically satisfied guard
      if (!applied.is_builtin() && LevelPosition(applied.atom()) >= 0) {
        MULTILOG_ASSIGN_OR_RETURN(
            Atom spec,
            SpecializeAtom(applied.atom(), LevelPosition(applied.atom())));
        body.push_back(applied.negated() ? Literal::Negative(std::move(spec))
                                         : Literal::Positive(std::move(spec)));
      } else {
        body.push_back(std::move(applied));
      }
    }
    if (!dropped) {
      int head_pos = LevelPosition(head);
      if (head_pos >= 0) {
        MULTILOG_ASSIGN_OR_RETURN(head, SpecializeAtom(head, head_pos));
      }
      out->AddClause(Clause(std::move(head), std::move(body)));
    }

    // Advance the odometer.
    size_t i = 0;
    while (i < choice.size() && ++choice[i] == levels.size()) {
      choice[i] = 0;
      ++i;
    }
    if (i == choice.size()) break;
    if (choice.empty()) break;
  }
  return Status::OK();
}

bool HasBAtomBodies(const Database& db) {
  auto scan = [](const std::vector<MlClause>& clauses) {
    for (const MlClause& c : clauses) {
      for (const MlLiteral& lit : c.body) {
        if (std::holds_alternative<BAtom>(lit.atom)) return true;
      }
    }
    return false;
  };
  return scan(db.sigma) || scan(db.pi);
}

}  // namespace

bool IsReservedPredicate(const std::string& name) {
  return name == "rel" || name == "bel" || name == "dominate" ||
         name == "sdom" || name == "vis" || name == "overridden" ||
         name == "level" || name == "order";
}

datalog::Program EngineAxioms() {
  Program a;
  auto pos = [](Atom atom) { return Literal::Positive(std::move(atom)); };

  // a1-a3: dominance is the reflexive-transitive closure of order.
  a.AddClause(Clause(Atom("dominate", {Var("X"), Var("X")}),
                     {pos(Atom("level", {Var("X")}))}));
  a.AddClause(Clause(Atom("dominate", {Var("X"), Var("Y")}),
                     {pos(Atom("order", {Var("X"), Var("Y")}))}));
  a.AddClause(Clause(Atom("dominate", {Var("X"), Var("Y")}),
                     {pos(Atom("order", {Var("X"), Var("Z")})),
                      pos(Atom("dominate", {Var("Z"), Var("Y")}))}));
  // Strict dominance: at least one order edge.
  a.AddClause(Clause(Atom("sdom", {Var("X"), Var("Y")}),
                     {pos(Atom("order", {Var("X"), Var("Z")})),
                      pos(Atom("dominate", {Var("Z"), Var("Y")}))}));

  const std::vector<Term> pkavch = {Var("P"), Var("K"), Var("A"),
                                    Var("V"), Var("C"), Var("H")};
  // a4 (fir).
  {
    std::vector<Term> head = pkavch;
    head.push_back(Sym("fir"));
    a.AddClause(Clause(Atom("bel", head), {pos(Atom("rel", pkavch))}));
  }
  // a5 (opt).
  {
    std::vector<Term> head = pkavch;
    head.push_back(Sym("opt"));
    a.AddClause(Clause(
        Atom("bel", head),
        {pos(Atom("rel", {Var("P"), Var("K"), Var("A"), Var("V"), Var("C"),
                          Var("L")})),
         pos(Atom("dominate", {Var("L"), Var("H")}))}));
  }
  // Repaired a6-a9 (cau): visibility + overriding.
  a.AddClause(Clause(
      Atom("vis", pkavch),
      {pos(Atom("rel", {Var("P"), Var("K"), Var("A"), Var("V"), Var("C"),
                        Var("L")})),
       pos(Atom("dominate", {Var("L"), Var("H")}))}));
  a.AddClause(Clause(
      Atom("overridden", {Var("P"), Var("K"), Var("A"), Var("C"), Var("H")}),
      {pos(Atom("vis", pkavch)),
       pos(Atom("vis", {Var("P"), Var("K"), Var("A"), Var("V2"), Var("C2"),
                        Var("H")})),
       pos(Atom("sdom", {Var("C"), Var("C2")}))}));
  {
    std::vector<Term> head = pkavch;
    head.push_back(Sym("cau"));
    a.AddClause(Clause(
        Atom("bel", head),
        {pos(Atom("vis", pkavch)),
         Literal::Negative(Atom("overridden", {Var("P"), Var("K"), Var("A"),
                                               Var("C"), Var("H")}))}));
  }
  return a;
}

Result<datalog::Program> TranslateDatabase(const CheckedDatabase& cdb,
                                           const std::string& user_level) {
  MULTILOG_RETURN_IF_ERROR(cdb.lattice.Index(user_level).status());
  const Term user = Sym(user_level);
  Program out;
  for (const std::vector<MlClause>* component :
       {&cdb.db.lambda, &cdb.db.sigma, &cdb.db.pi}) {
    for (const MlClause& clause : *component) {
      MULTILOG_ASSIGN_OR_RETURN(std::vector<Clause> translated,
                                TranslateClause(clause, user));
      for (Clause& c : translated) out.AddClause(std::move(c));
    }
  }
  return out;
}

Result<std::vector<datalog::Literal>> TranslateGoalGeneric(
    const std::vector<MlLiteral>& goal, const std::string& user_level) {
  const Term user = Sym(user_level);
  std::vector<Literal> out;
  for (const MlLiteral& lit : goal) {
    MULTILOG_RETURN_IF_ERROR(AppendBodyAtom(lit, user, &out));
  }
  return out;
}

Result<ReducedProgram> Reduce(const CheckedDatabase& cdb,
                              const std::string& user_level,
                              const ReductionOptions& options) {
  MULTILOG_RETURN_IF_ERROR(cdb.lattice.Index(user_level).status());
  const Term user = Sym(user_level);

  ReducedProgram out;
  out.user_level = user_level;
  out.levels = cdb.lattice.names();
  out.lattice = cdb.lattice;

  // tau(Delta): Lambda, Sigma, Pi. The Sigma component's spans and
  // per-entry clause counts are recorded so a maintained copy can be
  // spliced incrementally (AppendSigmaFact / EraseSigmaFact).
  for (const std::vector<MlClause>* component :
       {&cdb.db.lambda, &cdb.db.sigma, &cdb.db.pi}) {
    const bool is_sigma = component == &cdb.db.sigma;
    if (is_sigma) out.display_sigma_begin = out.display.size();
    for (const MlClause& clause : *component) {
      MULTILOG_ASSIGN_OR_RETURN(std::vector<Clause> translated,
                                TranslateClause(clause, user));
      if (is_sigma) out.sigma_display_counts.push_back(translated.size());
      for (Clause& c : translated) out.display.AddClause(std::move(c));
    }
    if (is_sigma) out.display_sigma_end = out.display.size();
  }
  out.display.Append(EngineAxioms());

  switch (options.specialization) {
    case ReductionOptions::Specialization::kNever:
      out.specialized = false;
      break;
    case ReductionOptions::Specialization::kAlways:
      out.specialized = true;
      break;
    case ReductionOptions::Specialization::kAuto:
      out.specialized = HasBAtomBodies(cdb.db);
      break;
  }

  if (!out.specialized) {
    out.program = out.display;
    out.program_sigma_begin = out.display_sigma_begin;
    out.program_sigma_end = out.display_sigma_end;
    out.sigma_program_counts = out.sigma_display_counts;
    return out;
  }
  // Specialize clause by clause, noting where the Sigma span lands in
  // the specialized program and how many specialized clauses each Sigma
  // entry produced (a display clause can expand into several copies or
  // be statically dropped).
  std::vector<size_t> per_display(out.display.size(), 0);
  for (size_t i = 0; i < out.display.clauses().size(); ++i) {
    const size_t before = out.program.size();
    MULTILOG_RETURN_IF_ERROR(
        SpecializeClause(out.display.clauses()[i], cdb.lattice,
                         &out.program));
    per_display[i] = out.program.size() - before;
  }
  size_t pos = 0;
  for (size_t i = 0; i < out.display_sigma_begin; ++i) pos += per_display[i];
  out.program_sigma_begin = pos;
  size_t display_index = out.display_sigma_begin;
  for (size_t count : out.sigma_display_counts) {
    size_t produced = 0;
    for (size_t j = 0; j < count; ++j) produced += per_display[display_index++];
    out.sigma_program_counts.push_back(produced);
    pos += produced;
  }
  out.program_sigma_end = pos;
  return out;
}

Result<SigmaFactDelta> TranslateSigmaFact(const MlClause& fact,
                                          const ReducedProgram& rp) {
  SigmaFactDelta out;
  MULTILOG_ASSIGN_OR_RETURN(std::vector<Clause> translated,
                            TranslateClause(fact, Sym(rp.user_level)));
  if (rp.specialized) {
    Program spec;
    for (const Clause& c : translated) {
      MULTILOG_RETURN_IF_ERROR(SpecializeClause(c, rp.lattice, &spec));
    }
    out.program.assign(spec.clauses().begin(), spec.clauses().end());
  } else {
    out.program = translated;
  }
  out.display = std::move(translated);
  out.edb.reserve(out.program.size());
  for (const Clause& c : out.program) {
    if (!c.IsFact() || !c.head().IsGround()) {
      return Status::InvalidArgument(
          "sigma entry does not translate to ground facts; not "
          "incrementally maintainable: " +
          c.ToString());
    }
    out.edb.push_back(c.head());
  }
  return out;
}

void AppendSigmaFact(ReducedProgram* rp, const SigmaFactDelta& delta) {
  size_t pos = rp->display_sigma_end;
  for (const Clause& c : delta.display) rp->display.InsertClause(pos++, c);
  rp->display_sigma_end += delta.display.size();
  pos = rp->program_sigma_end;
  for (const Clause& c : delta.program) rp->program.InsertClause(pos++, c);
  rp->program_sigma_end += delta.program.size();
  rp->sigma_display_counts.push_back(delta.display.size());
  rp->sigma_program_counts.push_back(delta.program.size());
}

void EraseSigmaFact(ReducedProgram* rp, size_t sigma_index) {
  size_t display_pos = rp->display_sigma_begin;
  size_t program_pos = rp->program_sigma_begin;
  for (size_t i = 0; i < sigma_index; ++i) {
    display_pos += rp->sigma_display_counts[i];
    program_pos += rp->sigma_program_counts[i];
  }
  const size_t display_count = rp->sigma_display_counts[sigma_index];
  const size_t program_count = rp->sigma_program_counts[sigma_index];
  rp->display.EraseClauses(display_pos, display_count);
  rp->program.EraseClauses(program_pos, program_count);
  rp->display_sigma_end -= display_count;
  rp->program_sigma_end -= program_count;
  rp->sigma_display_counts.erase(rp->sigma_display_counts.begin() +
                                 static_cast<ptrdiff_t>(sigma_index));
  rp->sigma_program_counts.erase(rp->sigma_program_counts.begin() +
                                 static_cast<ptrdiff_t>(sigma_index));
}

Result<std::vector<std::vector<datalog::Literal>>>
ReducedProgram::TranslateGoal(const std::vector<MlLiteral>& goal) const {
  const Term user = Sym(user_level);
  std::vector<Literal> generic;
  for (const MlLiteral& lit : goal) {
    MULTILOG_RETURN_IF_ERROR(AppendBodyAtom(lit, user, &generic));
  }
  if (!specialized) {
    return std::vector<std::vector<Literal>>{std::move(generic)};
  }

  // Specialize the goal like a headless clause, expanding level
  // variables and recording their bindings as explicit equalities so
  // answer substitutions still mention them. Statically false goals are
  // dropped; static pruning of true guards keeps the lists small.
  std::set<Symbol> level_vars;
  for (const Literal& lit : generic) {
    if (lit.is_builtin()) continue;
    int pos = LevelPosition(lit.atom());
    if (pos >= 0 && lit.atom().args()[pos].IsVariable()) {
      level_vars.insert(lit.atom().args()[pos].symbol());
    }
  }
  // Reuse SpecializeClause by synthesizing a head that carries the level
  // variables, then stripping it off.
  std::vector<Term> head_args;
  for (Symbol v : level_vars) head_args.push_back(Term::Var(v));
  Clause pseudo(Atom("__goal", head_args), generic);

  Program expanded;
  MULTILOG_RETURN_IF_ERROR(SpecializeClause(pseudo, lattice, &expanded));

  std::vector<std::vector<Literal>> out;
  for (const Clause& c : expanded.clauses()) {
    std::vector<Literal> list = c.body();
    // Re-attach level-variable bindings from the synthesized head.
    size_t i = 0;
    for (Symbol v : level_vars) {
      list.push_back(Literal::Builtin(datalog::Comparison::kEq,
                                      Term::Var(v), c.head().args()[i]));
      ++i;
    }
    out.push_back(std::move(list));
  }
  return out;
}

}  // namespace multilog::ml
