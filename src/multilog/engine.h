#ifndef MULTILOG_MULTILOG_ENGINE_H_
#define MULTILOG_MULTILOG_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/symbol.h"
#include "datalog/eval.h"
#include "multilog/database.h"
#include "multilog/interpreter.h"
#include "multilog/reduction.h"

namespace multilog::ml {

/// How to execute a query.
enum class ExecMode {
  /// The goal-directed proof system of Section 5 (yields proof trees).
  kOperational,
  /// The CORAL-style reduction of Section 6 (bottom-up over tau(Delta)+A).
  kReduced,
  /// Run both and verify they agree - Theorem 6.1 as an executable
  /// assertion; disagreement returns an Internal error.
  kCheckBoth,
};

struct EngineOptions {
  Interpreter::Options interpreter;
  ReductionOptions reduction;
  /// Evaluation knobs for the bottom-up (reduced) semantics, including
  /// EvalOptions::num_threads for intra-query parallelism. The parallel
  /// merge is deterministic, so answers are identical for every thread
  /// count.
  datalog::EvalOptions eval;
  /// Enforce Definition 5.4 on load (see CheckDatabase).
  bool require_consistency = false;
};

/// One query's outcome. `answers[i]` pairs with `proofs[i]` when proofs
/// were produced (operational / check-both modes); otherwise `proofs` is
/// empty.
struct QueryResult {
  std::vector<datalog::Substitution> answers;
  std::vector<ProofPtr> proofs;
};

/// The MultiLog engine: parses/checks a database once, then answers
/// queries at any session level through either semantics. Reduced
/// programs, their models, and interpreters are cached per level.
///
/// ## Concurrency model
///
/// After construction (FromSource / FromDatabase) the checked database,
/// the lattice, and the options are immutable; the only mutable state is
/// the per-level caches, guarded by one `std::shared_mutex`:
///
///  - `Query`, `QuerySource`, and `RunStoredQueries` are safe to call
///    concurrently from any number of threads, at the same or different
///    session levels, in any ExecMode. Concurrent sessions at different
///    clearances - the paper's core multi-level scenario - therefore
///    need no external locking.
///  - Cache reads (a level already compiled) take the shared lock: the
///    steady-state fast path never serializes readers. The first query
///    at a level builds the reduced program / model outside any lock and
///    publishes it under the exclusive lock; when two threads race, the
///    first insert wins and the loser's work is discarded, so callers
///    always observe one canonical object per level.
///  - `Reduced` and `ReducedModel` return pointers to cached state that
///    is immutable once published and stable for the engine's lifetime
///    (std::map nodes never move).
///  - The operational interpreter mutates its call tables while solving,
///    so each level's interpreter is serialized by a per-level mutex;
///    `Query(kOperational / kCheckBoth)` takes it internally. Distinct
///    levels solve in parallel. The raw `OperationalInterpreter`
///    accessor bypasses that mutex - callers who use it concurrently
///    with `Query` must do their own locking.
///
/// The engine must not be moved after the first query (cached state
/// holds pointers into the engine); `Result<Engine>`'s move at
/// construction time is safe because all caches are still empty.
class Engine {
 public:
  /// Parses MultiLog source; stored `?- ...` queries are kept and can be
  /// run with RunStoredQueries.
  static Result<Engine> FromSource(std::string_view source,
                                   EngineOptions options = {});
  static Result<Engine> FromDatabase(Database db, EngineOptions options = {});

  const CheckedDatabase& checked() const { return cdb_; }
  const lattice::SecurityLattice& lattice() const { return cdb_.lattice; }

  /// Answers a goal at session level `user_level`. Thread-safe.
  ///
  /// `cancel` (optional) is a per-query cooperative cancellation token:
  /// the server arms it with the request deadline, and both semantics
  /// poll it (bottom-up on the emit-budget path, operational on the
  /// tabled-answer path), unwinding with kDeadlineExceeded. A cancelled
  /// first-query-at-a-level leaves the level uncached; nothing partial
  /// is ever published, so the engine stays consistent and reusable.
  Result<QueryResult> Query(const std::vector<MlLiteral>& goal,
                            const std::string& user_level,
                            ExecMode mode = ExecMode::kReduced,
                            const CancelToken* cancel = nullptr);

  /// Parses `goal_text` ("?- ..." optional) and answers it. Thread-safe.
  Result<QueryResult> QuerySource(std::string_view goal_text,
                                  const std::string& user_level,
                                  ExecMode mode = ExecMode::kReduced,
                                  const CancelToken* cancel = nullptr);

  /// Runs every stored query of the database, in order. Thread-safe.
  Result<std::vector<QueryResult>> RunStoredQueries(
      const std::string& user_level, ExecMode mode = ExecMode::kReduced,
      const CancelToken* cancel = nullptr);

  /// The reduced program compiled for `user_level` (cached). The
  /// returned object is immutable and stable; safe to read while other
  /// threads query.
  Result<const ReducedProgram*> Reduced(const std::string& user_level);

  /// The evaluated model of the reduced program, with any level
  /// specialization decoded back to generic rel/6, bel/7, vis/6 and
  /// overridden/5 atoms. Immutable and stable once returned. A
  /// cancelled evaluation (via `cancel`) publishes nothing.
  Result<const datalog::Model*> ReducedModel(const std::string& user_level,
                                             const CancelToken* cancel =
                                                 nullptr);

  /// The operational interpreter for `user_level` (cached). NOT safe
  /// for concurrent Solve calls - see the concurrency model above.
  Result<Interpreter*> OperationalInterpreter(const std::string& user_level);

 private:
  /// A level's interpreter plus the mutex serializing its Solve calls
  /// (tabling mutates the interpreter). `interp` is set exactly once,
  /// under `mu`, and never replaced.
  struct InterpreterSlot {
    std::mutex mu;
    std::unique_ptr<Interpreter> interp;
  };

  /// All mutable engine state. Held behind a unique_ptr so the Engine
  /// value stays movable at construction time (std::shared_mutex is
  /// neither movable nor copyable).
  struct Caches {
    /// Guards the three maps' *structure* (find/insert). The mapped
    /// values are immutable after publication (interpreter slots manage
    /// their own interior mutability via InterpreterSlot::mu).
    std::shared_mutex mu;
    // Per-level caches are keyed by the interned level symbol: lookup is
    // an integer compare, and iteration order still matches the level
    // names.
    std::map<Symbol, ReducedProgram> reduced;
    std::map<Symbol, datalog::Model> models;
    std::map<Symbol, InterpreterSlot> interpreters;
  };

  Engine(CheckedDatabase cdb, EngineOptions options)
      : cdb_(std::move(cdb)),
        options_(options),
        caches_(std::make_unique<Caches>()) {}

  /// Returns the slot for `user_level`, creating it (and building the
  /// interpreter) on first use.
  Result<InterpreterSlot*> GetInterpreterSlot(const std::string& user_level);

  CheckedDatabase cdb_;
  EngineOptions options_;
  std::unique_ptr<Caches> caches_;
};

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_ENGINE_H_
