#ifndef MULTILOG_MULTILOG_ENGINE_H_
#define MULTILOG_MULTILOG_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/symbol.h"
#include "datalog/eval.h"
#include "multilog/database.h"
#include "multilog/interpreter.h"
#include "multilog/reduction.h"

namespace multilog::ml {

/// How to execute a query.
enum class ExecMode {
  /// The goal-directed proof system of Section 5 (yields proof trees).
  kOperational,
  /// The CORAL-style reduction of Section 6 (bottom-up over tau(Delta)+A).
  kReduced,
  /// Run both and verify they agree - Theorem 6.1 as an executable
  /// assertion; disagreement returns an Internal error.
  kCheckBoth,
};

struct EngineOptions {
  Interpreter::Options interpreter;
  ReductionOptions reduction;
  /// Enforce Definition 5.4 on load (see CheckDatabase).
  bool require_consistency = false;
};

/// One query's outcome. `answers[i]` pairs with `proofs[i]` when proofs
/// were produced (operational / check-both modes); otherwise `proofs` is
/// empty.
struct QueryResult {
  std::vector<datalog::Substitution> answers;
  std::vector<ProofPtr> proofs;
};

/// The MultiLog engine: parses/checks a database once, then answers
/// queries at any session level through either semantics. Reduced
/// programs, their models, and interpreters are cached per level.
class Engine {
 public:
  /// Parses MultiLog source; stored `?- ...` queries are kept and can be
  /// run with RunStoredQueries.
  static Result<Engine> FromSource(std::string_view source,
                                   EngineOptions options = {});
  static Result<Engine> FromDatabase(Database db, EngineOptions options = {});

  const CheckedDatabase& checked() const { return cdb_; }
  const lattice::SecurityLattice& lattice() const { return cdb_.lattice; }

  /// Answers a goal at session level `user_level`.
  Result<QueryResult> Query(const std::vector<MlLiteral>& goal,
                            const std::string& user_level,
                            ExecMode mode = ExecMode::kReduced);

  /// Parses `goal_text` ("?- ..." optional) and answers it.
  Result<QueryResult> QuerySource(std::string_view goal_text,
                                  const std::string& user_level,
                                  ExecMode mode = ExecMode::kReduced);

  /// Runs every stored query of the database, in order.
  Result<std::vector<QueryResult>> RunStoredQueries(
      const std::string& user_level, ExecMode mode = ExecMode::kReduced);

  /// The reduced program compiled for `user_level` (cached).
  Result<const ReducedProgram*> Reduced(const std::string& user_level);

  /// The evaluated model of the reduced program, with any level
  /// specialization decoded back to generic rel/6, bel/7, vis/6 and
  /// overridden/5 atoms.
  Result<const datalog::Model*> ReducedModel(const std::string& user_level);

  /// The operational interpreter for `user_level` (cached).
  Result<Interpreter*> OperationalInterpreter(const std::string& user_level);

 private:
  Engine(CheckedDatabase cdb, EngineOptions options)
      : cdb_(std::move(cdb)), options_(options) {}

  CheckedDatabase cdb_;
  EngineOptions options_;
  // Per-level caches are keyed by the interned level symbol: lookup is an
  // integer compare, and iteration order still matches the level names.
  std::map<Symbol, ReducedProgram> reduced_;
  std::map<Symbol, datalog::Model> models_;
  std::map<Symbol, std::unique_ptr<Interpreter>> interpreters_;
};

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_ENGINE_H_
