#ifndef MULTILOG_MULTILOG_ENGINE_H_
#define MULTILOG_MULTILOG_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/symbol.h"
#include "datalog/eval.h"
#include "datalog/magic.h"
#include "multilog/database.h"
#include "multilog/interpreter.h"
#include "multilog/reduction.h"
#include "storage/storage.h"

namespace multilog::ml {

/// How to execute a query.
enum class ExecMode {
  /// The goal-directed proof system of Section 5 (yields proof trees).
  kOperational,
  /// The CORAL-style reduction of Section 6 (bottom-up over tau(Delta)+A).
  kReduced,
  /// Run both and verify they agree - Theorem 6.1 as an executable
  /// assertion; disagreement returns an Internal error.
  kCheckBoth,
};

/// The construction-time default for EngineOptions::incremental: true
/// unless the environment variable MULTILOG_NO_INCREMENTAL is set (the
/// CI ablation leg and `multilogd --no-incremental` force the
/// invalidate-and-recompute path through it).
bool IncrementalMaintenanceDefault();

/// The construction-time default for EngineOptions::magic: true unless
/// the environment variable MULTILOG_NO_MAGIC is set (the CI ablation
/// leg and `multilogd --no-magic` force every query through the full
/// bottom-up path).
bool MagicPlansDefault();

/// The construction-time default for EngineOptions::group_commit: true
/// unless the environment variable MULTILOG_NO_GROUP_COMMIT is set (the
/// CI ablation leg and `multilogd --no-group-commit` force one fsync
/// per committed write through it).
bool GroupCommitDefault();

/// The routing key of one mutation, without an engine: parses
/// `fact_source` exactly as Assert/Retract would (one bodyless ground
/// m-fact) and returns the entity key's canonical rendering
/// (Term::ToString). The sharding router hashes this text to pick the
/// owning shard - the *text* rather than a symbol id, because symbol
/// ids are process-local while the rendered key is stable across every
/// process that ever sees the fact. Fails with InvalidArgument exactly
/// when the engines would refuse the mutation shape.
Result<std::string> RoutingKeyOfFact(std::string_view fact_source);

struct EngineOptions {
  Interpreter::Options interpreter;
  ReductionOptions reduction;
  /// Evaluation knobs for the bottom-up (reduced) semantics, including
  /// EvalOptions::num_threads for intra-query parallelism. The parallel
  /// merge is deterministic, so answers are identical for every thread
  /// count.
  datalog::EvalOptions eval;
  /// Enforce Definition 5.4 on load (see CheckDatabase).
  bool require_consistency = false;
  /// Maintain cached reduced programs and served models *in place*
  /// across Assert/Retract - the translated fact is spliced into each
  /// dominating level's reduced program and the EDB delta is propagated
  /// into its live fixpoint (DRed) and decoded view - instead of
  /// invalidating and recomputing them on the next query. Answers are
  /// byte-identical either way (property-tested); a level falls back to
  /// invalidation when its change cannot be applied incrementally.
  /// Disable for ablation or as a safety valve.
  bool incremental = IncrementalMaintenanceDefault();
  /// Goal-directed query compilation: when a reduced-mode query binds
  /// at least one argument and no full model is cached for its level,
  /// the engine compiles (and caches) a magic-sets rewrite specialized
  /// to the goal's binding pattern and evaluates only the goal-relevant
  /// fragment, instead of building the whole tau(Delta)+A fixpoint.
  /// Answers are byte-identical either way (property-tested); goals the
  /// rewrite cannot serve (all-free binding patterns, reachable
  /// negation/aggregates) fall back to the full path, counted by
  /// EngineCounters::magic_fallbacks. Disable for ablation or as a
  /// safety valve.
  bool magic = MagicPlansDefault();
  /// Group commit on the durable path: a mutation appends its WAL
  /// record unsynced under the database lock, then releases the lock
  /// and joins a shared fdatasync (Storage::SyncTo) before
  /// acknowledging - so N concurrent writers pay ~1 fsync, not N. The
  /// acknowledgement contract is unchanged (no reply until the record
  /// is durable); what changes is that the in-memory database applies
  /// the write *before* it is durable, so a concurrent reader can
  /// observe a write whose committer has not yet been acked - and a
  /// crash in that window loses a write nobody was told succeeded.
  /// Disable for ablation or strict log-before-apply ordering.
  bool group_commit = GroupCommitDefault();
};

/// One query's outcome. `answers[i]` pairs with `proofs[i]` when proofs
/// were produced (operational / check-both modes); otherwise `proofs` is
/// empty.
struct QueryResult {
  std::vector<datalog::Substitution> answers;
  std::vector<ProofPtr> proofs;
};

/// One committed mutation's outcome.
struct WriteResult {
  /// The mutation's database-wide sequence number (durable when storage
  /// is attached; an in-memory counter otherwise).
  uint64_t seqno = 0;
  /// The session levels whose cached reduced programs / models /
  /// interpreters this write invalidated (dropped): with incremental
  /// maintenance off, exactly the cached levels that dominate the
  /// written level; with it on, only the dominating levels that could
  /// not be maintained in place. Incomparable and strictly lower levels
  /// keep their caches - a fact at level s is invisible to them, so
  /// their models cannot have changed.
  std::vector<std::string> invalidated_levels;
  /// The cached dominating levels whose reduced program (and live
  /// model, when one was built) this write maintained *in place*
  /// through the delta path. Disjoint from invalidated_levels; always
  /// empty when EngineOptions::incremental is off.
  std::vector<std::string> maintained_levels;
};

/// A point-in-time copy of the engine's observability counters (the
/// live counters are relaxed atomics; this is the readable snapshot the
/// server's STATS command serializes).
struct EngineCounters {
  uint64_t cache_hits = 0;     // per-level cache lookups that hit
  uint64_t cache_misses = 0;   // lookups that had to build
  uint64_t invalidation_events = 0;    // committed writes
  uint64_t cache_entries_invalidated = 0;  // entries dropped by them
  uint64_t asserts_ok = 0;
  uint64_t retracts_ok = 0;
  uint64_t writes_rejected = 0;  // security/integrity/parse rejections
  uint64_t checkpoints = 0;
  uint64_t deltas_applied = 0;   // live models maintained in place by writes
  uint64_t fallback_recomputes = 0;  // levels dropped to a full recompute
  uint64_t live_models = 0;      // gauge: served models currently cached
  uint64_t plan_hits = 0;        // compiled magic plans served from cache
  uint64_t plan_misses = 0;      // plan compiles (first query of a pattern)
  uint64_t magic_fallbacks = 0;  // queries declined by the magic path
};

/// A point-in-time copy of the attached storage's counters, taken under
/// the engine's database lock (the raw Storage accessors are guarded by
/// it, so concurrent readers must come through here).
struct StorageCounters {
  bool attached = false;  // false = in-memory engine; storage fields zero
  std::string dir;
  uint64_t next_seqno = 0;
  uint64_t snapshot_seqno = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;
  /// Group-commit fdatasyncs performed (each covering >= 1 append);
  /// 0 when group commit is disabled.
  uint64_t group_syncs = 0;
  /// Highest mutation seqno applied to the in-memory database (set for
  /// in-memory engines too). On a primary this trails next_seqno by
  /// exactly one; on a replica it is the staleness bound clients read.
  uint64_t applied_seqno = 0;
  /// What recovery had to say about the WAL tail: empty when it was
  /// intact, otherwise the kDataLoss description of the torn tail that
  /// was truncated (previously visible only on the daemon's stderr).
  std::string recovery_data_loss;
};

/// The MultiLog engine: parses/checks a database once, then answers
/// queries at any session level through either semantics. Reduced
/// programs, their models, and interpreters are cached per level.
///
/// ## Concurrency model
///
/// The lattice (Lambda) and the options are immutable after
/// construction; Sigma is mutable through Assert/Retract. Two locks
/// govern the mutable state, both living behind `caches_`:
///
///  - `db_mu`, a shared_mutex over the database *and* the caches as a
///    whole. Every read path (Query, QuerySource, RunStoredQueries,
///    Reduced, ReducedModel, OperationalInterpreter, DumpSource) holds
///    it shared for the duration; Assert, Retract, and Checkpoint hold
///    it exclusive. Mutations therefore serialize against in-flight
///    queries: a write waits for running queries to finish, and queries
///    started after a commit see the new Sigma. Read throughput is
///    untouched in the steady state (shared acquisitions don't
///    serialize).
///  - `mu`, guarding the cache maps' structure exactly as before (two
///    readers may race to build the first model for a level; the first
///    publication wins).
///
/// ## Mutations (Assert / Retract / Checkpoint)
///
/// Writes are pinned to the writing subject's clearance: a fact
/// asserted at level s must be an s-fact (`s[p(...)]`), and every cell
/// classification must be dominated by s - anything else is a
/// SecurityViolation. Asserted facts are validated against Definition
/// 5.4 (entity / null / polyinstantiation integrity, CheckFactIntegrity)
/// *before* they are logged or applied; a rejected write leaves the
/// WAL, Sigma, and every cache untouched. A committed write invalidates
/// exactly the cached levels that dominate the written level
/// (dominance-aware invalidation; see WriteResult::invalidated_levels).
///
/// When constructed via FromStorage, commits are durable: the mutation
/// is fsynced into the write-ahead log *before* Sigma changes
/// (write-ahead discipline), and Checkpoint() compacts the log into a
/// fresh snapshot. See storage/storage.h for the recovery story.
///
/// The interpreter caveats of the previous revision still apply: each
/// level's operational interpreter is serialized by a per-level mutex,
/// and the raw OperationalInterpreter accessor bypasses both that mutex
/// and `db_mu` - callers using it concurrently with Query or any
/// mutation must do their own locking, and the pointer is invalidated
/// when a write at a dominated level evicts the slot.
///
/// The engine must not be moved after the first query (cached state
/// holds pointers into the engine); `Result<Engine>`'s move at
/// construction time is safe because all caches are still empty.
class Engine {
 public:
  /// Parses MultiLog source; stored `?- ...` queries are kept and can be
  /// run with RunStoredQueries.
  static Result<Engine> FromSource(std::string_view source,
                                   EngineOptions options = {});
  static Result<Engine> FromDatabase(Database db, EngineOptions options = {});

  /// Recovers the database from `storage` (latest snapshot + WAL
  /// replay; see Storage::Open) and attaches it, making Assert /
  /// Retract / Checkpoint durable. `storage` must outlive the engine.
  /// Replayed mutations were validated when first written, so they are
  /// applied verbatim; the recovered database then passes the same
  /// CheckDatabase as any other source. Torn-tail truncation performed
  /// by Storage::Open is NOT an error here - inspect
  /// storage->recovered().data_loss for it.
  static Result<Engine> FromStorage(storage::Storage* storage,
                                    EngineOptions options = {});

  const CheckedDatabase& checked() const { return cdb_; }
  const lattice::SecurityLattice& lattice() const { return cdb_.lattice; }

  /// Answers a goal at session level `user_level`. Thread-safe.
  ///
  /// `cancel` (optional) is a per-query cooperative cancellation token:
  /// the server arms it with the request deadline, and both semantics
  /// poll it (bottom-up on the emit-budget path, operational on the
  /// tabled-answer path), unwinding with kDeadlineExceeded. A cancelled
  /// first-query-at-a-level leaves the level uncached; nothing partial
  /// is ever published, so the engine stays consistent and reusable.
  Result<QueryResult> Query(const std::vector<MlLiteral>& goal,
                            const std::string& user_level,
                            ExecMode mode = ExecMode::kReduced,
                            const CancelToken* cancel = nullptr);

  /// Parses `goal_text` ("?- ..." optional) and answers it. Thread-safe.
  Result<QueryResult> QuerySource(std::string_view goal_text,
                                  const std::string& user_level,
                                  ExecMode mode = ExecMode::kReduced,
                                  const CancelToken* cancel = nullptr);

  /// Runs every stored query of the database, in order. Thread-safe.
  Result<std::vector<QueryResult>> RunStoredQueries(
      const std::string& user_level, ExecMode mode = ExecMode::kReduced,
      const CancelToken* cancel = nullptr);

  /// Asserts one ground MultiLog fact (e.g. "s[p(k : a -s-> v)].") on
  /// behalf of a subject cleared at `level`. Validates (security, then
  /// Definition 5.4 integrity), logs (when durable), applies, and
  /// invalidates dominating caches - in that order. Thread-safe;
  /// serializes against in-flight queries.
  Result<WriteResult> Assert(std::string_view fact_source,
                             const std::string& level);

  /// Retracts a previously asserted fact (matched structurally after
  /// parsing; NotFound when absent). Same security pinning, logging,
  /// and invalidation as Assert. Derived facts cannot be retracted -
  /// only stored Sigma facts.
  Result<WriteResult> Retract(std::string_view fact_source,
                              const std::string& level);

  /// Folds the WAL into a fresh snapshot (durable engines only;
  /// InvalidArgument otherwise). Thread-safe; serializes against
  /// queries and writes.
  Status Checkpoint();

  /// Applies one WAL record shipped from a replication primary. The
  /// apply-from-log twin of Assert/Retract: it skips clearance
  /// re-binding (the record's level IS the writing clearance the
  /// primary already enforced) but keeps the Definition 5.4 integrity
  /// check as a paranoia check - a failure means the replica has
  /// diverged from its primary, which the caller should treat as
  /// "resync from snapshot", not ignore. Persists the record to the
  /// local WAL first (same write-ahead discipline as Mutate), keeping
  /// the primary's seqno, so a restarted replica resumes from its own
  /// disk without refetching. Idempotent: a record at or below
  /// AppliedSeqno() is a no-op, as are a duplicate assert and an
  /// absent retract (the snapshot-then-tail handoff can replay the
  /// boundary record). A seqno gap (record.seqno > AppliedSeqno()+1)
  /// is refused with kInternal - the stream lost records, and the
  /// answer is a snapshot resync, never a silent skip. Thread-safe;
  /// serializes against queries.
  Result<WriteResult> ApplyReplicated(const storage::WalRecord& record);

  /// Replaces the entire database with a snapshot shipped from a
  /// replication primary (`source` is the primary's canonical dump at
  /// `seqno`) and drops every cache. The security lattice must be
  /// equivalent to the current one (same levels, same order) - the
  /// server binds sessions against a lattice reference it reads
  /// without the database lock, so the lattice object itself is never
  /// replaced. Persisted via Storage::InstallSnapshot when durable.
  /// Thread-safe; serializes against queries.
  Status InstallSnapshot(uint64_t seqno, const std::string& source);

  /// Highest mutation seqno applied to the in-memory database: the
  /// replica staleness bound, and the primary's last committed write.
  /// Lock-free (relaxed atomic) so bounded-staleness reads can poll it
  /// without touching the database lock.
  uint64_t AppliedSeqno() const;

  /// The current database as canonical MultiLog source - the same text
  /// a snapshot stores, so "byte-identical recovery" is a string
  /// compare on this. Thread-safe. When `at_seqno` is non-null it
  /// receives the applied seqno the dump corresponds to, read under the
  /// same hold of the database lock - the consistent (source, seqno)
  /// pair a replication snapshot ships.
  std::string DumpSource(uint64_t* at_seqno = nullptr);

  /// Snapshot of the engine's cache/mutation counters. Thread-safe.
  EngineCounters Counters() const;

  /// Snapshot of the attached storage's counters (zeroed, attached =
  /// false, for in-memory engines). Thread-safe, unlike poking the raw
  /// storage() while writers run.
  StorageCounters StorageStats() const;

  /// The attached storage (nullptr for in-memory engines). The
  /// pointer's state is guarded by the engine's database lock - use
  /// StorageStats() for concurrent reads.
  storage::Storage* storage() const { return storage_; }

  /// The reduced program compiled for `user_level` (cached). The
  /// returned object is immutable and stable until a mutation
  /// invalidates the level; holding it across an Assert/Retract at a
  /// dominated level is undefined. Safe to read while other threads
  /// query.
  Result<const ReducedProgram*> Reduced(const std::string& user_level);

  /// The evaluated model of the reduced program, with any level
  /// specialization decoded back to generic rel/6, bel/7, vis/6 and
  /// overridden/5 atoms. Stability caveat as for Reduced. A cancelled
  /// evaluation (via `cancel`) publishes nothing.
  Result<const datalog::Model*> ReducedModel(const std::string& user_level,
                                             const CancelToken* cancel =
                                                 nullptr);

  /// The operational interpreter for `user_level` (cached). NOT safe
  /// for concurrent Solve calls - see the concurrency model above.
  Result<Interpreter*> OperationalInterpreter(const std::string& user_level);

 private:
  /// A level's interpreter plus the mutex serializing its Solve calls
  /// (tabling mutates the interpreter). `interp` is set exactly once,
  /// under `mu`, and never replaced.
  struct InterpreterSlot {
    std::mutex mu;
    std::unique_ptr<Interpreter> interp;
  };

  /// All mutable engine state. Held behind a unique_ptr so the Engine
  /// value stays movable at construction time (mutexes and atomics are
  /// neither movable nor copyable).
  struct Caches {
    /// Readers-writer lock over the database + caches as a whole; see
    /// the class comment. Acquired before (and independently of) `mu`.
    std::shared_mutex db_mu;
    /// Guards the three maps' *structure* (find/insert/erase). The
    /// mapped values are immutable after publication (interpreter slots
    /// manage their own interior mutability via InterpreterSlot::mu).
    std::shared_mutex mu;
    // Per-level caches are keyed by the interned level symbol: lookup is
    // an integer compare, and iteration order still matches the level
    // names.
    std::map<Symbol, ReducedProgram> reduced;
    std::map<Symbol, datalog::Model> models;
    /// The *encoded* (possibly level-specialized) fixpoint each decoded
    /// model in `models` was derived from - the form ApplyDelta
    /// maintains. Populated only when EngineOptions::incremental is on,
    /// and kept in lockstep with `models`.
    std::map<Symbol, datalog::Model> raw_models;
    std::map<Symbol, InterpreterSlot> interpreters;

    /// One compiled magic plan per (level, goal-signature). A nullptr
    /// plan is a remembered compile rejection (reachable negation /
    /// unsafe goal): later queries with the pattern skip the compile
    /// attempt and go straight to the full path.
    struct PlanEntry {
      uint64_t epoch = 0;
      std::shared_ptr<const datalog::MagicPlan> plan;
    };
    /// Key: (interned level, interned MagicGoalPattern::signature).
    /// Inserted under `mu` (exclusive) by queries, erased only by
    /// mutations (which hold db_mu exclusively, so no reader is in
    /// flight); shared_ptr values keep a handed-out plan alive across
    /// its own eviction.
    std::map<std::pair<Symbol, Symbol>, PlanEntry> plans;
    /// Per-level program epoch, bumped by every mutation visible at the
    /// level. Plans record the epoch they were compiled at; a mismatch
    /// means the plan predates a write and must not be (re)published.
    std::map<Symbol, uint64_t> plan_epochs;

    // Observability (relaxed; read via Engine::Counters).
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> invalidation_events{0};
    std::atomic<uint64_t> cache_entries_invalidated{0};
    std::atomic<uint64_t> asserts_ok{0};
    std::atomic<uint64_t> retracts_ok{0};
    std::atomic<uint64_t> writes_rejected{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> deltas_applied{0};
    std::atomic<uint64_t> fallback_recomputes{0};
    std::atomic<uint64_t> plan_hits{0};
    std::atomic<uint64_t> plan_misses{0};
    std::atomic<uint64_t> magic_fallbacks{0};

    /// Highest seqno applied to the database (see Engine::AppliedSeqno).
    /// Written under db_mu (exclusive), read lock-free.
    std::atomic<uint64_t> applied_seqno{0};
  };

  Engine(CheckedDatabase cdb, EngineOptions options)
      : cdb_(std::move(cdb)),
        sigma_index_(SigmaIndex::Build(cdb_.db)),
        options_(options),
        caches_(std::make_unique<Caches>()) {}

  // The *Locked variants assume the caller holds db_mu (shared for
  // reads, exclusive for the writer calling into invalidation).
  Result<QueryResult> QueryLocked(const std::vector<MlLiteral>& goal,
                                  const std::string& user_level,
                                  ExecMode mode, const CancelToken* cancel);
  Result<const ReducedProgram*> ReducedLocked(const std::string& user_level);
  Result<const datalog::Model*> ReducedModelLocked(
      const std::string& user_level, const CancelToken* cancel);

  /// The goal-directed fast path of reduced-mode queries: probes the
  /// compiled-plan cache for (level, binding pattern), compiling and
  /// publishing a plan on a miss, and runs only the goal-relevant
  /// fragment of the reduced program. Returns true when the magic path
  /// produced `*outcome` (which may be a genuine error to propagate);
  /// false means "use the full path" - all-free goals, patterns whose
  /// compile was rejected, or a level whose full model is already
  /// cached (matching a cached model is cheaper than re-deriving).
  /// Assumes db_mu held (shared).
  bool TryMagicLocked(const std::vector<datalog::Literal>& generic,
                      const std::string& user_level,
                      const CancelToken* cancel,
                      Result<std::vector<datalog::Substitution>>* outcome);

  /// Post-commit plan invalidation: erases the cached plans of every
  /// level dominating `written_level` and bumps those levels' plan
  /// epochs, so a plan compiled against the pre-write program can never
  /// serve a post-write query (the PR 6 splice keeps reduced programs
  /// live in place, but a compiled plan holds copies of the clauses it
  /// reached, so it recompiles instead). Assumes db_mu held
  /// exclusively.
  void PrunePlans(const std::string& written_level);

  /// Returns the slot for `user_level`, creating it (and building the
  /// interpreter) on first use. Assumes db_mu held (shared).
  Result<InterpreterSlot*> GetInterpreterSlot(const std::string& user_level);

  /// Shared Assert/Retract implementation.
  Result<WriteResult> Mutate(std::string_view fact_source,
                             const std::string& level, bool retract);

  /// Drops every cached level that dominates `written_level`; returns
  /// the names of the dropped levels. Assumes db_mu held exclusively.
  std::vector<std::string> InvalidateDominating(
      const std::string& written_level);

  /// The incremental counterpart of InvalidateDominating: for every
  /// cached level dominating `written_level`, splices the translated
  /// fact into the maintained reduced program (kDeltaReduce) and
  /// propagates the EDB delta into the live fixpoint (kDeltaEval) and
  /// its decoded serving view (kRegroup). A level whose change cannot
  /// be applied incrementally falls back to being dropped. Interpreters
  /// are always dropped (tabled state cannot absorb a retraction).
  /// `fact` is the mutated Sigma clause; `sigma_index` its store
  /// position before a retract erased it. Assumes db_mu held
  /// exclusively.
  void PropagateDelta(const std::string& written_level, const MlClause& fact,
                      bool retract, size_t sigma_index, WriteResult* result);

  CheckedDatabase cdb_;
  /// Incremental index over the stored Sigma facts (duplicate counts +
  /// Definition 5.4 key groups), kept in lockstep with cdb_.db.sigma by
  /// Mutate under db_mu. Makes per-append validation O(key group)
  /// instead of O(|Sigma|).
  SigmaIndex sigma_index_;
  EngineOptions options_;
  std::unique_ptr<Caches> caches_;
  storage::Storage* storage_ = nullptr;  // not owned
  uint64_t mem_seqno_ = 0;  // in-memory engines; guarded by db_mu
};

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_ENGINE_H_
