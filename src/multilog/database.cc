#include "multilog/database.h"

#include <map>
#include <set>

#include "datalog/eval.h"
#include "datalog/program.h"

namespace multilog::ml {

namespace {

/// Converts an l-/h-atom to its Datalog form; other atom kinds are an
/// admissibility error inside Lambda.
Result<datalog::Atom> LambdaAtomToDatalog(const MlAtom& atom) {
  if (const auto* l = std::get_if<LAtom>(&atom)) {
    return datalog::Atom("level", {l->level});
  }
  if (const auto* h = std::get_if<HAtom>(&atom)) {
    return datalog::Atom("order", {h->low, h->high});
  }
  return Status::InvalidProgram(
      "Lambda clause depends on a non-Lambda atom '" + MlAtomToString(atom) +
      "'; the dependency graph of l-/h-atoms must contain only l- and "
      "h-atoms (Definition 5.3)");
}

/// Collects the ground security-label symbols of an m-atom (level and
/// every classification position).
void CollectLabels(const MAtom& m, std::set<std::string>* out) {
  if (m.level.IsSymbol()) out->insert(m.level.name());
  for (const MCell& c : m.cells) {
    if (c.classification.IsSymbol()) out->insert(c.classification.name());
  }
}

}  // namespace

Result<lattice::SecurityLattice> ExtractLattice(const Database& db) {
  datalog::Program lambda;
  for (const MlClause& clause : db.lambda) {
    MULTILOG_ASSIGN_OR_RETURN(datalog::Atom head,
                              LambdaAtomToDatalog(clause.head));
    std::vector<datalog::Literal> body;
    for (const MlLiteral& b : clause.body) {
      MULTILOG_ASSIGN_OR_RETURN(datalog::Atom atom,
                                LambdaAtomToDatalog(b.atom));
      body.push_back(b.negated
                         ? datalog::Literal::Negative(std::move(atom))
                         : datalog::Literal::Positive(std::move(atom)));
    }
    lambda.AddClause(datalog::Clause(std::move(head), std::move(body)));
  }

  MULTILOG_ASSIGN_OR_RETURN(datalog::Model model, datalog::Evaluate(lambda));

  lattice::SecurityLattice::Builder builder;
  for (const datalog::Atom& fact : model.FactsFor("level/1")) {
    if (!fact.args()[0].IsSymbol()) {
      return Status::InvalidProgram("level() fact with non-symbolic level: " +
                                    fact.ToString());
    }
    builder.AddLevel(fact.args()[0].name());
  }
  for (const datalog::Atom& fact : model.FactsFor("order/2")) {
    if (!fact.args()[0].IsSymbol() || !fact.args()[1].IsSymbol()) {
      return Status::InvalidProgram("order() fact with non-symbolic level: " +
                                    fact.ToString());
    }
    builder.AddOrder(fact.args()[0].name(), fact.args()[1].name());
  }
  return builder.Build();
}

Status CheckAdmissible(const Database& db,
                       const lattice::SecurityLattice& lat) {
  std::set<std::string> labels;
  for (const MlClause& clause : db.sigma) {
    if (const auto* m = std::get_if<MAtom>(&clause.head)) {
      CollectLabels(*m, &labels);
    }
    for (const MlLiteral& lit : clause.body) {
      if (const auto* m = std::get_if<MAtom>(&lit.atom)) {
        CollectLabels(*m, &labels);
      }
      if (const auto* b = std::get_if<BAtom>(&lit.atom)) {
        CollectLabels(b->matom, &labels);
      }
    }
  }
  // Labels in Pi bodies and queries count too: they are part of the
  // program's use of the security vocabulary.
  for (const MlClause& clause : db.pi) {
    for (const MlLiteral& lit : clause.body) {
      if (const auto* m = std::get_if<MAtom>(&lit.atom)) {
        CollectLabels(*m, &labels);
      }
      if (const auto* b = std::get_if<BAtom>(&lit.atom)) {
        CollectLabels(b->matom, &labels);
      }
    }
  }
  for (const std::string& label : labels) {
    if (!lat.Contains(label)) {
      return Status::InvalidProgram(
          "security label '" + label +
          "' used in Sigma is not asserted by Lambda (Definition 5.3)");
    }
  }
  return Status::OK();
}

namespace {

/// True when the m-atom is fully ground (level and classifications are
/// symbols, key and values contain no variables) - only then does it
/// carry syntactically checkable tuple identity.
bool IsGroundMolecule(const MAtom& m) {
  bool ground = m.level.IsSymbol() && m.key.IsGround();
  for (const MCell& c : m.cells) {
    ground = ground && c.classification.IsSymbol() && c.value.IsGround();
  }
  return ground;
}

/// Locates the key cell a -c_AK-> k. For composite keys (a compound
/// key(v1,...,vk) term, the Section 7 F-logic-style encoding) a cell
/// matching any key component counts.
const MCell* FindKeyCell(const MAtom& m) {
  for (const MCell& c : m.cells) {
    if (c.value == m.key) return &c;
    if (m.key.IsCompound() && m.key.name() == "key") {
      for (const Term& part : m.key.args()) {
        if (c.value == part) return &c;
      }
    }
  }
  return nullptr;
}

/// The (c_AK, attribute, c_i) part of a functional-dependency key -
/// group-local, i.e. relative to a fixed (predicate, key) pair. The
/// cross-fact maps used by the full scans prepend a "pred|key|" prefix;
/// SigmaIndex groups use this form directly.
std::string FdCellKey(const std::string& c_ak, const MCell& c) {
  return c_ak + "|" + c.attribute + "|" + c.classification.name();
}

/// The Definition 5.4 checks for one ground molecule whose key cell was
/// already located: entity integrity (every classification dominates
/// c_AK), null integrity (nulls live at c_AK), and polyinstantiation
/// integrity against (and into) the shared functional-dependency map
/// keyed by `key_prefix` + FdCellKey (i.e. (p, k, c_AK, a, c_i) -> v
/// when the prefix identifies the molecule's predicate and key).
Status CheckMolecule(const MAtom& m, const std::string& c_ak,
                     const lattice::SecurityLattice& lat,
                     const std::string& key_prefix,
                     std::map<std::string, Term>* fd) {
  for (const MCell& c : m.cells) {
    MULTILOG_ASSIGN_OR_RETURN(bool dominates,
                              lat.Leq(c_ak, c.classification.name()));
    if (!dominates) {
      return Status::IntegrityViolation(
          "entity integrity: classification of '" + c.attribute +
          "' does not dominate c_AK in " + m.ToString());
    }
    if (IsNullTerm(c.value) && c.classification.name() != c_ak) {
      return Status::IntegrityViolation(
          "null integrity: null attribute '" + c.attribute +
          "' not classified at c_AK in " + m.ToString());
    }
    auto [it, inserted] = fd->emplace(key_prefix + FdCellKey(c_ak, c),
                                      c.value);
    if (!inserted && it->second != c.value) {
      return Status::IntegrityViolation(
          "polyinstantiation integrity: (p, k, c_AK, a, c_i) -> v "
          "violated for attribute '" +
          c.attribute + "' of key " + m.key.ToString() + ": values " +
          it->second.ToString() + " and " + c.value.ToString());
    }
  }
  return Status::OK();
}

/// The "pred|key|" prefix scoping a molecule's FD entries in the
/// cross-fact maps.
std::string FdGroupPrefix(const MAtom& m) {
  return m.predicate + "|" + m.key.ToString() + "|";
}

}  // namespace

Status CheckConsistent(const Database& db,
                       const lattice::SecurityLattice& lat) {
  // (p, k, c_AK, attribute, c_i) -> value, for polyinstantiation
  // integrity across facts.
  std::map<std::string, Term> fd;

  for (const MlClause& clause : db.sigma) {
    if (!clause.IsFact()) continue;
    const auto* m = std::get_if<MAtom>(&clause.head);
    if (m == nullptr) continue;

    // Only ground molecular facts carry checkable tuple identity.
    if (!IsGroundMolecule(*m)) continue;

    if (IsNullTerm(m->key)) {
      return Status::IntegrityViolation("entity integrity: null key in " +
                                        m->ToString());
    }
    const MCell* key_cell = FindKeyCell(*m);
    if (key_cell == nullptr) {
      return Status::IntegrityViolation(
          "no key cell (a -c-> k with value = key) in m-predicate " +
          m->ToString());
    }
    MULTILOG_RETURN_IF_ERROR(CheckMolecule(
        *m, key_cell->classification.name(), lat, FdGroupPrefix(*m), &fd));
  }
  return Status::OK();
}

Status CheckFactIntegrity(const Database& db,
                          const lattice::SecurityLattice& lat,
                          const MAtom& fact) {
  if (!IsGroundMolecule(fact)) {
    return Status::IntegrityViolation(
        "Definition 5.4 requires a fully ground fact; '" + fact.ToString() +
        "' contains variables");
  }
  if (IsNullTerm(fact.key)) {
    return Status::IntegrityViolation("entity integrity: null key in " +
                                      fact.ToString());
  }
  const MCell* key_cell = FindKeyCell(fact);
  if (key_cell == nullptr) {
    return Status::IntegrityViolation(
        "no key cell (a -c-> k with value = key) in m-predicate " +
        fact.ToString());
  }

  // Seed the functional dependency with the checkable part of the
  // stored Sigma; facts without key cells are grandfathered (see the
  // header comment).
  std::map<std::string, Term> fd;
  for (const MlClause& clause : db.sigma) {
    if (!clause.IsFact()) continue;
    const auto* m = std::get_if<MAtom>(&clause.head);
    if (m == nullptr || !IsGroundMolecule(*m)) continue;
    const MCell* stored_key = FindKeyCell(*m);
    if (stored_key == nullptr) continue;
    const std::string c_ak = stored_key->classification.name();
    const std::string prefix = FdGroupPrefix(*m);
    for (const MCell& c : m->cells) {
      fd.emplace(prefix + FdCellKey(c_ak, c), c.value);
    }
  }
  return CheckMolecule(fact, key_cell->classification.name(), lat,
                       FdGroupPrefix(fact), &fd);
}

std::string SigmaIndex::FactKey(const MAtom& fact) {
  // The canonical source text: the exact string the WAL logs and
  // DumpSource emits, so text equality is structural equality.
  return MlClause{fact, {}}.ToString();
}

std::string SigmaIndex::GroupKey(const MAtom& fact) {
  return fact.predicate + "|" + fact.key.ToString();
}

SigmaIndex SigmaIndex::Build(const Database& db) {
  SigmaIndex index;
  for (const MlClause& clause : db.sigma) {
    if (!clause.IsFact()) continue;
    if (const auto* m = std::get_if<MAtom>(&clause.head)) {
      index.Add(*m);
    }
  }
  return index;
}

void SigmaIndex::Add(const MAtom& fact) {
  ++fact_counts_[FactKey(fact)];
  if (!IsGroundMolecule(fact)) return;
  const MCell* key_cell = FindKeyCell(fact);
  if (key_cell == nullptr) return;  // grandfathered: no tuple identity
  const std::string& c_ak = key_cell->classification.name();
  Group& group = groups_[GroupKey(fact)];
  for (const MCell& c : fact.cells) {
    auto [it, inserted] =
        group.emplace(FdCellKey(c_ak, c), FdEntry{c.value, 0});
    // A pre-existing entry with a different value can only come from an
    // inconsistent stored Sigma (loaded without the consistency check);
    // such cells keep the first value, exactly like the full-scan seed,
    // and are not refcounted against it.
    if (inserted || it->second.value == c.value) ++it->second.count;
  }
}

void SigmaIndex::Remove(const MAtom& fact) {
  auto fit = fact_counts_.find(FactKey(fact));
  if (fit != fact_counts_.end() && --fit->second == 0) {
    fact_counts_.erase(fit);
  }
  if (!IsGroundMolecule(fact)) return;
  const MCell* key_cell = FindKeyCell(fact);
  if (key_cell == nullptr) return;
  auto git = groups_.find(GroupKey(fact));
  if (git == groups_.end()) return;
  const std::string& c_ak = key_cell->classification.name();
  for (const MCell& c : fact.cells) {
    auto it = git->second.find(FdCellKey(c_ak, c));
    if (it != git->second.end() && it->second.value == c.value &&
        --it->second.count == 0) {
      git->second.erase(it);
    }
  }
  if (git->second.empty()) groups_.erase(git);
}

size_t SigmaIndex::FactCount(const MAtom& fact) const {
  auto it = fact_counts_.find(FactKey(fact));
  return it == fact_counts_.end() ? 0 : it->second;
}

const SigmaIndex::Group* SigmaIndex::GroupFor(const MAtom& fact) const {
  auto it = groups_.find(GroupKey(fact));
  return it == groups_.end() ? nullptr : &it->second;
}

Status CheckFactIntegrity(const SigmaIndex& index,
                          const lattice::SecurityLattice& lat,
                          const MAtom& fact) {
  if (!IsGroundMolecule(fact)) {
    return Status::IntegrityViolation(
        "Definition 5.4 requires a fully ground fact; '" + fact.ToString() +
        "' contains variables");
  }
  if (IsNullTerm(fact.key)) {
    return Status::IntegrityViolation("entity integrity: null key in " +
                                      fact.ToString());
  }
  const MCell* key_cell = FindKeyCell(fact);
  if (key_cell == nullptr) {
    return Status::IntegrityViolation(
        "no key cell (a -c-> k with value = key) in m-predicate " +
        fact.ToString());
  }

  // Only the written fact's key group can participate in the functional
  // dependency, so only it is materialized; every other group is
  // irrelevant by construction of the FD key.
  std::map<std::string, Term> fd;
  if (const SigmaIndex::Group* group = index.GroupFor(fact)) {
    for (const auto& [slot, entry] : *group) {
      fd.emplace(slot, entry.value);
    }
  }
  return CheckMolecule(fact, key_cell->classification.name(), lat,
                       /*key_prefix=*/"", &fd);
}

Result<CheckedDatabase> CheckDatabase(Database db, bool require_consistency) {
  MULTILOG_ASSIGN_OR_RETURN(lattice::SecurityLattice lat, ExtractLattice(db));
  MULTILOG_RETURN_IF_ERROR(CheckAdmissible(db, lat));
  if (require_consistency) {
    MULTILOG_RETURN_IF_ERROR(CheckConsistent(db, lat));
  }
  return CheckedDatabase{std::move(db), std::move(lat)};
}

}  // namespace multilog::ml
