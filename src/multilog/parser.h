#ifndef MULTILOG_MULTILOG_PARSER_H_
#define MULTILOG_MULTILOG_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "multilog/ast.h"

namespace multilog::ml {

/// Parses MultiLog source in the paper's concrete syntax:
///
///   level(u).  level(c).  level(s).          % l-atoms
///   order(u, c).  order(c, s).               % h-atoms
///   u[p(k : a -u-> v)].                      % m-atom fact
///   s[mission(avenger : starship -s-> avenger,
///             objective -s-> shipping)].     % m-molecule (',' or ';')
///   c[p(k : a -c-> t)] :- q(j).              % m-clause with p-atom body
///   s[p(k : a -u-> v)] :-
///       c[p(k : a -c-> t)] << cau.           % b-atom body
///   ?- c[p(k : a -R-> v)] << opt.            % query (r10 of Figure 10)
///   u[p(k : a -> v)].                        % don't-care classification
///
/// Lexical rules follow Datalog: lower-case identifiers are symbols,
/// upper-case or '_' are variables, 'quoted' constants and integers are
/// allowed as values. `a -> v` (no classification) introduces a fresh
/// don't-care variable (Section 7). Comments: `%` or `//` to end of line.
Result<Database> ParseMultiLog(std::string_view source);

/// Parses a single query body "g1, g2" (optionally with "?-" prefix and
/// trailing ".").
Result<std::vector<MlLiteral>> ParseMlGoal(std::string_view source);

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_PARSER_H_
