#ifndef MULTILOG_MULTILOG_INTERPRETER_H_
#define MULTILOG_MULTILOG_INTERPRETER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "datalog/call_key.h"
#include "datalog/program.h"
#include "datalog/unify.h"
#include "multilog/database.h"
#include "multilog/proof.h"
#include "multilog/reduction.h"

namespace multilog::ml {

/// The operational semantics of Section 5: a goal-directed, tabled
/// implementation of the Figure 9 proof system, evaluated in the context
/// of a session (database) level u. Produces proof trees.
///
/// Rule mapping:
///  - EMPTY/AND      - goal-list recursion; facts carry an (empty) leaf;
///  - DEDUCTION-G    - SLD resolution for p-, l- and h-atoms;
///  - DEDUCTION-G'   - resolution for m-atoms; the no-read-up guards
///                     dominate(l, u) / dominate(c, u) are part of the
///                     lambda-translated clause bodies, as in Section 6;
///  - BELIEF         - dispatch of b-atoms to the mode rules;
///  - DESCEND-O      - optimistic belief: descend to any level R <= l;
///  - DESCEND-C1..C4 - cautious belief: descend plus the overriding
///                     (maximality) check of Definition 3.1; the printed
///                     Figure 9 variants collapse to two cases here -
///                     descend-c1 (own-level cell) and descend-c2
///                     (inherited cell) - each implicitly carrying the
///                     not-overridden side condition;
///  - DEDUCTION-B    - b-atoms in bodies are proved by the same BELIEF
///                     machinery;
///  - REFLEXIVITY /
///    TRANSITIVITY   - dominance goals discharged against the lattice;
///  - FILTER /
///    FILTER-NULL /
///    USER-BELIEF    - the Figure 13 extensions; the first two are
///                     opt-in, user belief modes are always available
///                     through Pi clauses over the distinguished bel/7
///                     predicate.
///
/// Termination: calls are tabled per call pattern with an outer fixpoint
/// (as in CORAL-style memoing engines); cautious belief's overriding
/// check runs the relevant sub-tables to completion first. Programs must
/// be level-stratified for cautious belief (no cell's presence at a
/// level may depend on cautious belief at a non-lower level) - the same
/// requirement the reduction imposes through stratification.
class Interpreter {
 public:
  struct Options {
    /// Enables the FILTER rule: a lower level inherits higher-level
    /// cells whose classification it dominates (Figure 13).
    bool enable_filter = false;
    /// Enables FILTER-NULL: hidden higher-level cells surface as nulls
    /// classified at the inheriting level (Figure 13).
    bool enable_filter_null = false;
    size_t max_passes = 256;
    size_t max_answers = 1'000'000;
  };

  struct Answer {
    /// Bindings restricted to the goal's variables.
    datalog::Substitution subst;
    /// Proof of the full goal (an "and" node for conjunctions).
    ProofPtr proof;
  };

  struct Stats {
    size_t passes = 0;
    size_t calls = 0;
    size_t tabled_answers = 0;
  };

  /// `cdb` must outlive the interpreter. The session level is fixed per
  /// interpreter (the paper determines it at login / compile time).
  static Result<Interpreter> Create(const CheckedDatabase* cdb,
                                    std::string user_level, Options options);
  static Result<Interpreter> Create(const CheckedDatabase* cdb,
                                    std::string user_level);

  /// Proves a MultiLog goal conjunction, returning every answer with its
  /// proof tree, deterministically ordered. Negated (p-/l-/h-) literals
  /// are proved by negation-as-failure over completed call tables.
  /// `cancel` (optional) is polled on the tabled-answer path — the same
  /// checkpoint as max_answers — and per call/pass; a cancelled solve
  /// unwinds with kDeadlineExceeded and the interpreter stays usable.
  Result<std::vector<Answer>> Solve(const std::vector<MlLiteral>& goal,
                                    const CancelToken* cancel = nullptr);

  /// As Solve, over the internal guarded-literal form.
  Result<std::vector<Answer>> SolveLiterals(
      const std::vector<datalog::Literal>& goal,
      const CancelToken* cancel = nullptr);

  const Stats& stats() const { return stats_; }
  const std::string& user_level() const { return user_level_; }

 private:
  Interpreter(const CheckedDatabase* cdb, std::string user_level,
              Options options, datalog::Program program);

  struct TabledAnswer {
    datalog::Atom atom;
    ProofPtr proof;
  };
  struct AnswerTable {
    std::vector<TabledAnswer> answers;
    std::unordered_set<datalog::Atom, datalog::AtomHash> set;
  };
  struct Match {
    datalog::Substitution subst;
    std::vector<ProofPtr> proofs;
  };

  Status SolveCallOnce(const datalog::Atom& pattern);
  Status CompleteCall(const datalog::Atom& pattern);
  Status SolveBody(const std::vector<datalog::Literal>& body, size_t index,
                   Match current, std::vector<Match>* out);

  Status ExpandClauses(const datalog::Atom& pattern, AnswerTable* table);
  Status ExpandDominate(const datalog::Atom& pattern, AnswerTable* table);
  Status ExpandBelief(const datalog::Atom& pattern, AnswerTable* table);
  Status ExpandFilter(const datalog::Atom& pattern, AnswerTable* table);

  Status AddAnswer(AnswerTable* table, datalog::Atom atom, ProofPtr proof);

  /// Ground levels the pattern's argument can take: the singleton when
  /// ground, every lattice level when a variable.
  Result<std::vector<std::string>> LevelCandidates(const datalog::Term& t) const;

  const CheckedDatabase* cdb_;
  std::string user_level_;
  Options options_;
  datalog::Program program_;  // tau(Delta), guarded, no axioms
  std::unordered_map<datalog::PredicateId,
                     std::vector<const datalog::Clause*>,
                     datalog::PredicateIdHash>
      clauses_by_pred_;
  std::unordered_map<datalog::CallKey, AnswerTable, datalog::CallKeyHash>
      tables_;
  std::unordered_set<datalog::CallKey, datalog::CallKeyHash> active_;
  int rename_counter_ = 0;
  Stats stats_;
  /// The current Solve's cancellation token (null outside Solve). Solve
  /// calls are externally serialized (see Engine), so a member is safe.
  const CancelToken* cancel_ = nullptr;
};

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_INTERPRETER_H_
