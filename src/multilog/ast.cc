#include "multilog/ast.h"

namespace multilog::ml {

Term NullTerm() { return Term::Sym("null"); }

bool IsNullTerm(const Term& t) { return t.IsSymbol() && t.name() == "null"; }

std::string MCell::ToString() const {
  return attribute + " -" + classification.ToString() + "-> " +
         value.ToString();
}

std::vector<MAtom> MAtom::Atomize() const {
  std::vector<MAtom> out;
  out.reserve(cells.size());
  for (const MCell& cell : cells) {
    out.push_back(MAtom{level, predicate, key, {cell}});
  }
  return out;
}

std::string MAtom::ToString() const {
  std::string out = level.ToString() + "[" + predicate + "(" +
                    key.ToString() + " : ";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += cells[i].ToString();
  }
  out += ")]";
  return out;
}

std::string BAtom::ToString() const {
  return matom.ToString() + " << " + mode.ToString();
}

std::string LAtom::ToString() const {
  return "level(" + level.ToString() + ")";
}

std::string HAtom::ToString() const {
  return "order(" + low.ToString() + ", " + high.ToString() + ")";
}

std::string CAtom::ToString() const {
  return lhs.ToString() + " " + datalog::ComparisonToString(op) + " " +
         rhs.ToString();
}

std::string MlAtomToString(const MlAtom& atom) {
  return std::visit([](const auto& a) { return a.ToString(); }, atom);
}

std::string MlLiteral::ToString() const {
  return (negated ? "not " : "") + MlAtomToString(atom);
}

std::string MlClause::ToString() const {
  std::string out = MlAtomToString(head);
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

ClauseComponent ComponentOf(const MlClause& clause) {
  if (std::holds_alternative<LAtom>(clause.head) ||
      std::holds_alternative<HAtom>(clause.head)) {
    return ClauseComponent::kLambda;
  }
  if (std::holds_alternative<MAtom>(clause.head)) {
    return ClauseComponent::kSigma;
  }
  return ClauseComponent::kPi;
}

void Database::AddClause(MlClause clause) {
  switch (ComponentOf(clause)) {
    case ClauseComponent::kLambda:
      lambda.push_back(std::move(clause));
      return;
    case ClauseComponent::kSigma:
      sigma.push_back(std::move(clause));
      return;
    case ClauseComponent::kPi:
      pi.push_back(std::move(clause));
      return;
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const MlClause& c : lambda) out += c.ToString() + "\n";
  for (const MlClause& c : sigma) out += c.ToString() + "\n";
  for (const MlClause& c : pi) out += c.ToString() + "\n";
  for (const std::vector<MlLiteral>& q : queries) {
    out += "?- ";
    for (size_t i = 0; i < q.size(); ++i) {
      if (i > 0) out += ", ";
      out += q[i].ToString();
    }
    out += ".\n";
  }
  return out;
}

}  // namespace multilog::ml
