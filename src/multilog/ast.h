#ifndef MULTILOG_MULTILOG_AST_H_
#define MULTILOG_MULTILOG_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "datalog/atom.h"
#include "datalog/term.h"

namespace multilog::ml {

using datalog::Term;

/// The distinguished null value ⊥ of the language's function symbols F;
/// rendered and parsed as `null`.
Term NullTerm();
bool IsNullTerm(const Term& t);

/// One labeled column of an m-atom: `a -c-> v` (attribute a holds value
/// v under classification c). The classification may be a level symbol
/// or a variable; a "don't care" classification (Section 7) parses to a
/// fresh variable.
struct MCell {
  std::string attribute;
  Term classification;
  Term value;

  bool operator==(const MCell& other) const {
    return attribute == other.attribute &&
           classification == other.classification && value == other.value;
  }
  std::string ToString() const;
};

/// An m-atom `s[p(k : a -c-> v)]` or m-molecule
/// `s[p(k : a1 -c1-> v1, ..., an -cn-> vn)]` (Section 5.1). The level may
/// be a symbol or a variable.
struct MAtom {
  Term level;
  std::string predicate;
  Term key;
  std::vector<MCell> cells;

  bool IsAtomicForm() const { return cells.size() == 1; }

  /// Molecule -> list of atomic m-atoms (one per cell), per the paper's
  /// equivalence of a molecule with the conjunction of its atoms.
  std::vector<MAtom> Atomize() const;

  bool operator==(const MAtom& other) const {
    return level == other.level && predicate == other.predicate &&
           key == other.key && cells == other.cells;
  }
  std::string ToString() const;
};

/// A b-atom `s[p(k : a -c-> v)] << m`: a rational agent believes the
/// m-atom at level s in mode m. Modes are symbols (built-ins cau, opt,
/// fir, or a user-defined mode name - Section 7) or variables, which
/// enumerate the available modes when queried.
struct BAtom {
  MAtom matom;
  Term mode;

  bool operator==(const BAtom& other) const {
    return matom == other.matom && mode == other.mode;
  }
  std::string ToString() const;
};

/// An l-atom `level(s)`.
struct LAtom {
  Term level;
  bool operator==(const LAtom& other) const { return level == other.level; }
  std::string ToString() const;
};

/// An h-atom `order(l, h)`: l is immediately below h.
struct HAtom {
  Term low;
  Term high;
  bool operator==(const HAtom& other) const {
    return low == other.low && high == other.high;
  }
  std::string ToString() const;
};

/// A comparison builtin usable in clause bodies and queries
/// (`N >= 100`, `X != Y`, `D = times(N, 2)`) - not in the paper's
/// grammar, but CORAL has them and the reduction passes them through
/// untouched.
struct CAtom {
  datalog::Comparison op = datalog::Comparison::kEq;
  Term lhs;
  Term rhs;

  bool operator==(const CAtom& other) const {
    return op == other.op && lhs == other.lhs && rhs == other.rhs;
  }
  std::string ToString() const;
};

/// A p-atom is a plain datalog::Atom. MlAtom is the sum of the five atom
/// kinds of Section 5.1 plus comparison builtins.
using PAtom = datalog::Atom;
using MlAtom = std::variant<MAtom, BAtom, PAtom, LAtom, HAtom, CAtom>;

std::string MlAtomToString(const MlAtom& atom);

/// A body element: an atom, possibly negated. The paper's language is
/// the definite fragment; stratified negation over p-, l- and h-atoms is
/// our extension (following the author's own Datalog^neg line of work,
/// VLDB'97). Negation of secured atoms (m-/b-atoms) is rejected - it
/// would entangle negation-as-failure with the Bell-LaPadula guards.
struct MlLiteral {
  MlAtom atom;
  bool negated = false;

  bool operator==(const MlLiteral& other) const {
    return negated == other.negated && atom == other.atom;
  }
  std::string ToString() const;
};

/// A MultiLog clause `A :- B1, ..., Bm` (b-atoms may not head a clause -
/// checked at parse/assembly time).
struct MlClause {
  MlAtom head;
  std::vector<MlLiteral> body;

  bool IsFact() const { return body.empty(); }
  std::string ToString() const;
};

/// Which component of Delta = (Lambda, Sigma, Pi, Q) a clause belongs
/// to, by its head kind (Definition 5.1).
enum class ClauseComponent { kLambda, kSigma, kPi };
ClauseComponent ComponentOf(const MlClause& clause);

/// A MultiLog database Delta = (Lambda, Sigma, Pi, Q).
struct Database {
  std::vector<MlClause> lambda;  // l- and h-clauses
  std::vector<MlClause> sigma;   // m-clauses
  std::vector<MlClause> pi;      // p-clauses
  std::vector<std::vector<MlLiteral>> queries;

  /// Routes a clause into lambda/sigma/pi by head kind.
  void AddClause(MlClause clause);

  size_t clause_count() const {
    return lambda.size() + sigma.size() + pi.size();
  }

  /// Full source listing (lambda, sigma, pi, then queries).
  std::string ToString() const;
};

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_AST_H_
