#ifndef MULTILOG_MULTILOG_REDUCTION_H_
#define MULTILOG_MULTILOG_REDUCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/program.h"
#include "multilog/ast.h"
#include "multilog/database.h"

namespace multilog::ml {

/// The MultiLog inference engine **A** of Figure 12, in a repaired form:
/// the printed axioms a6-a9 are unsafe Datalog (variables occur only
/// under negation), so the cautious-mode axioms are restated with the
/// auxiliary predicates vis/6 (cell visible at a level) and overridden/5
/// (cell classification strictly dominated by a sibling cell's), which
/// compute exactly Definition 3.1 and keep every rule range-restricted
/// and the program stratified:
///
///   dominate(X, X) :- level(X).
///   dominate(X, Y) :- order(X, Y).
///   dominate(X, Y) :- order(X, Z), dominate(Z, Y).
///   sdom(X, Y)     :- order(X, Z), dominate(Z, Y).
///   bel(P,K,A,V,C,H,fir) :- rel(P,K,A,V,C,H).
///   bel(P,K,A,V,C,H,opt) :- rel(P,K,A,V,C,L), dominate(L,H).
///   vis(P,K,A,V,C,H)     :- rel(P,K,A,V,C,L), dominate(L,H).
///   overridden(P,K,A,C,H) :- vis(P,K,A,V,C,H), vis(P,K,A,V2,C2,H),
///                            sdom(C,C2).
///   bel(P,K,A,V,C,H,cau) :- vis(P,K,A,V,C,H),
///                           not overridden(P,K,A,C,H).
datalog::Program EngineAxioms();

/// Options for Reduce.
struct ReductionOptions {
  enum class Specialization {
    /// Specialize only when some Sigma or Pi clause body contains a
    /// b-atom (the case - e.g. Figure 10's r8 - where the generic
    /// program has recursion through negation at the predicate level
    /// even though the ground program is level-stratified).
    kAuto,
    kAlways,
    kNever,
  };
  Specialization specialization = Specialization::kAuto;
};

/// The result of reducing a MultiLog database at a session level u.
struct ReducedProgram {
  /// The executable program: tau(Delta) + A, possibly level-specialized
  /// (rel/bel/vis/overridden split into per-level predicates rel__u,
  /// rel__c, ... so that stratification works whenever the level ladder
  /// is acyclic).
  datalog::Program program;
  /// The faithful generic form tau(Delta) + A (Figure 12's shape), for
  /// display and for programs that stratify as-is.
  datalog::Program display;
  bool specialized = false;
  std::string user_level;
  std::vector<std::string> levels;
  /// Copy of the database's security lattice (drives static pruning of
  /// dominance guards during goal translation).
  lattice::SecurityLattice lattice;

  /// Maintenance bookkeeping, filled by Reduce: the half-open clause
  /// spans the Sigma component occupies in `display` and in `program`,
  /// plus per-Sigma-entry clause counts in store order (one entry per
  /// MlClause of Database::sigma; molecular facts atomize into several
  /// clauses). AppendSigmaFact / EraseSigmaFact splice these spans so a
  /// maintained copy stays byte-identical to a scratch Reduce of the
  /// mutated database.
  size_t display_sigma_begin = 0;
  size_t display_sigma_end = 0;
  size_t program_sigma_begin = 0;
  size_t program_sigma_end = 0;
  std::vector<size_t> sigma_display_counts;
  std::vector<size_t> sigma_program_counts;

  /// Translates a MultiLog goal into executable Datalog goal lists. With
  /// specialization a goal containing level variables expands into one
  /// list per level assignment (with explicit `Var = level` bindings so
  /// answers still carry the level variables).
  Result<std::vector<std::vector<datalog::Literal>>> TranslateGoal(
      const std::vector<MlLiteral>& goal) const;
};

/// The translation function tau of Section 6.1, plus the engine axioms,
/// compiled at session (database) level `user_level`: every m- and
/// b-atom in a clause body or query grows the guards dominate(l, u) and
/// dominate(c, u) - the lambda encoding of the BELIEF and DEDUCTION-G'
/// rules (no read up).
Result<ReducedProgram> Reduce(const CheckedDatabase& cdb,
                              const std::string& user_level,
                              const ReductionOptions& options = {});

/// Names reserved by the reduction; user programs may define bel/7
/// (user belief modes, Section 7) but not the others.
bool IsReservedPredicate(const std::string& name);

/// The clauses one Sigma entry contributes to a ReducedProgram, in both
/// forms, plus the ground EDB atoms those clauses assert (the program
/// clause heads) - exactly what datalog::ApplyDelta needs to maintain
/// the evaluated model.
struct SigmaFactDelta {
  std::vector<datalog::Clause> display;
  std::vector<datalog::Clause> program;
  std::vector<datalog::Atom> edb;
};

/// Translates one ground Sigma fact exactly as Reduce would (same
/// atomization, same specialization against rp's lattice). Errors when
/// a resulting program clause is not a ground bodyless fact - such an
/// entry is not incrementally maintainable and the caller must fall
/// back to a full Reduce.
Result<SigmaFactDelta> TranslateSigmaFact(const MlClause& fact,
                                          const ReducedProgram& rp);

/// Splices `delta`'s clauses at the end of rp's Sigma spans - matching
/// a Database::sigma push_back - and updates the bookkeeping.
void AppendSigmaFact(ReducedProgram* rp, const SigmaFactDelta& delta);

/// Removes the clauses contributed by the Sigma entry at `sigma_index`
/// (the index into Database::sigma *before* that entry is erased) and
/// updates the bookkeeping.
void EraseSigmaFact(ReducedProgram* rp, size_t sigma_index);

/// tau(Delta) alone - the translated clause store with session guards
/// but *without* the engine axioms. This is what the operational
/// interpreter resolves against (it implements the DESCEND rules
/// natively instead of through the axioms).
Result<datalog::Program> TranslateDatabase(const CheckedDatabase& cdb,
                                           const std::string& user_level);

/// Translates a goal into its generic guarded literal list (the
/// unspecialized form used by the operational interpreter).
Result<std::vector<datalog::Literal>> TranslateGoalGeneric(
    const std::vector<MlLiteral>& goal, const std::string& user_level);

}  // namespace multilog::ml

#endif  // MULTILOG_MULTILOG_REDUCTION_H_
