#include "multilog/interpreter.h"

#include <algorithm>
#include <functional>
#include <set>

#include "datalog/eval.h"

namespace multilog::ml {

namespace {

using datalog::Atom;
using datalog::Clause;
using datalog::Literal;
using datalog::Substitution;

using datalog::CallKey;
using datalog::MakeCallKey;

/// Renders an internal atom back in MultiLog surface syntax for proof
/// conclusions.
std::string DecodeAtom(const Atom& atom) {
  static const datalog::PredicateId kRel6("rel/6");
  static const datalog::PredicateId kBel7("bel/7");
  static const datalog::PredicateId kDominate2("dominate/2");
  const datalog::PredicateId id = atom.PredicateId();
  const auto& a = atom.args();
  if (id == kRel6) {
    return a[5].ToString() + "[" + a[0].ToString() + "(" + a[1].ToString() +
           " : " + a[2].ToString() + " -" + a[4].ToString() + "-> " +
           a[3].ToString() + ")]";
  }
  if (id == kBel7) {
    Atom rel("rel", {a[0], a[1], a[2], a[3], a[4], a[5]});
    return DecodeAtom(rel) + " << " + a[6].ToString();
  }
  if (id == kDominate2) {
    return a[0].ToString() + " <= " + a[1].ToString();
  }
  return atom.ToString();
}

std::string RuleNameForHead(const Atom& head) {
  static const datalog::PredicateId kRel6("rel/6");
  static const datalog::PredicateId kBel7("bel/7");
  const datalog::PredicateId id = head.PredicateId();
  if (id == kRel6) return "deduction-g'";
  if (id == kBel7) return "user-belief";
  return "deduction-g";
}

}  // namespace

Result<Interpreter> Interpreter::Create(const CheckedDatabase* cdb,
                                        std::string user_level) {
  return Create(cdb, std::move(user_level), Options());
}

Result<Interpreter> Interpreter::Create(const CheckedDatabase* cdb,
                                        std::string user_level,
                                        Options options) {
  MULTILOG_RETURN_IF_ERROR(cdb->lattice.Index(user_level).status());
  MULTILOG_ASSIGN_OR_RETURN(datalog::Program program,
                            TranslateDatabase(*cdb, user_level));
  MULTILOG_RETURN_IF_ERROR(program.CheckSafety());
  return Interpreter(cdb, std::move(user_level), options, std::move(program));
}

Interpreter::Interpreter(const CheckedDatabase* cdb, std::string user_level,
                         Options options, datalog::Program program)
    : cdb_(cdb),
      user_level_(std::move(user_level)),
      options_(options),
      program_(std::move(program)) {
  for (const Clause& c : program_.clauses()) {
    clauses_by_pred_[c.head().PredicateId()].push_back(&c);
  }
}

Result<std::vector<std::string>> Interpreter::LevelCandidates(
    const Term& t) const {
  if (t.IsSymbol()) {
    if (!cdb_->lattice.Contains(t.name())) {
      return std::vector<std::string>{};
    }
    return std::vector<std::string>{t.name()};
  }
  if (t.IsVariable()) return cdb_->lattice.names();
  return std::vector<std::string>{};
}

Status Interpreter::AddAnswer(AnswerTable* table, Atom atom, ProofPtr proof) {
  if (!atom.IsGround()) {
    return Status::InvalidProgram("derived non-ground answer: " +
                                  atom.ToString());
  }
  if (table->set.insert(atom).second) {
    table->answers.push_back(TabledAnswer{std::move(atom), std::move(proof)});
    ++stats_.tabled_answers;
    // Cancellation shares the checkpoint with the answer budget: both
    // fire at tabled-answer rate, and both unwind the whole solve.
    if (cancel_ != nullptr && cancel_->Cancelled()) {
      return Status::DeadlineExceeded(
          "operational evaluation cancelled (deadline exceeded)");
    }
    if (stats_.tabled_answers > options_.max_answers) {
      return Status::ResourceExhausted(
          "operational evaluation exceeded max_answers");
    }
  }
  return Status::OK();
}

Status Interpreter::SolveBody(const std::vector<Literal>& body, size_t index,
                              Match current, std::vector<Match>* out) {
  if (index == body.size()) {
    out->push_back(std::move(current));
    return Status::OK();
  }
  const Literal& lit = body[index];

  if (lit.is_builtin()) {
    MULTILOG_ASSIGN_OR_RETURN(
        Term lhs, datalog::EvalArithmetic(current.subst.Apply(lit.lhs())));
    MULTILOG_ASSIGN_OR_RETURN(
        Term rhs, datalog::EvalArithmetic(current.subst.Apply(lit.rhs())));
    if (lit.comparison() == datalog::Comparison::kEq &&
        (!lhs.IsGround() || !rhs.IsGround())) {
      Match next = current;
      if (!datalog::UnifyTerms(lhs, rhs, &next.subst)) return Status::OK();
      return SolveBody(body, index + 1, std::move(next), out);
    }
    MULTILOG_ASSIGN_OR_RETURN(
        bool holds, datalog::EvalBuiltin(lit.comparison(), lhs, rhs));
    if (!holds) return Status::OK();
    return SolveBody(body, index + 1, std::move(current), out);
  }
  if (lit.negated()) {
    // Negation as failure over a completed call table (sound for
    // predicate-stratified programs, which the reduction checks).
    Atom grounded = current.subst.Apply(lit.atom());
    if (!grounded.IsGround()) {
      return Status::InvalidProgram(
          "negative literal not ground at evaluation time: not " +
          grounded.ToString());
    }
    MULTILOG_RETURN_IF_ERROR(CompleteCall(grounded));
    auto table_it = tables_.find(MakeCallKey(grounded));
    if (table_it != tables_.end() && table_it->second.set.count(grounded)) {
      return Status::OK();  // the atom holds, so its negation fails
    }
    Match next = current;
    next.proofs.push_back(MakeProof(
        "negation-as-failure",
        "<D, " + user_level_ + "> |- not " + DecodeAtom(grounded)));
    return SolveBody(body, index + 1, std::move(next), out);
  }

  const Atom pattern = current.subst.Apply(lit.atom());
  MULTILOG_RETURN_IF_ERROR(SolveCallOnce(pattern));
  auto it = tables_.find(MakeCallKey(pattern));
  if (it == tables_.end()) return Status::OK();
  const std::vector<TabledAnswer> answers = it->second.answers;  // copy
  for (const TabledAnswer& answer : answers) {
    std::optional<Substitution> extended =
        datalog::UnifyAtoms(pattern, answer.atom, current.subst);
    if (!extended.has_value()) continue;
    Match next;
    next.subst = std::move(*extended);
    next.proofs = current.proofs;
    next.proofs.push_back(answer.proof);
    MULTILOG_RETURN_IF_ERROR(SolveBody(body, index + 1, std::move(next), out));
  }
  return Status::OK();
}

Status Interpreter::ExpandClauses(const Atom& pattern, AnswerTable* table) {
  auto it = clauses_by_pred_.find(pattern.PredicateId());
  if (it == clauses_by_pred_.end()) return Status::OK();
  for (const Clause* clause : it->second) {
    ++rename_counter_;
    Atom head = datalog::RenameAtom(clause->head(), rename_counter_);
    std::optional<Substitution> unified =
        datalog::UnifyAtoms(pattern, head, Substitution());
    if (!unified.has_value()) continue;

    std::vector<Literal> body;
    body.reserve(clause->body().size());
    for (const Literal& l : clause->body()) {
      body.push_back(datalog::RenameLiteral(l, rename_counter_));
    }

    std::vector<Match> matches;
    Match seed;
    seed.subst = std::move(*unified);
    MULTILOG_RETURN_IF_ERROR(SolveBody(body, 0, std::move(seed), &matches));
    for (Match& m : matches) {
      Atom answer = m.subst.Apply(head);
      std::vector<ProofPtr> premises = std::move(m.proofs);
      if (premises.empty()) {
        premises.push_back(MakeProof("empty", "[]"));
      }
      ProofPtr proof = MakeProof(RuleNameForHead(head),
                                 "<D, " + user_level_ + "> |- " +
                                     DecodeAtom(answer),
                                 std::move(premises));
      MULTILOG_RETURN_IF_ERROR(
          AddAnswer(table, std::move(answer), std::move(proof)));
    }
  }
  return Status::OK();
}

Status Interpreter::ExpandDominate(const Atom& pattern, AnswerTable* table) {
  MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> lows,
                            LevelCandidates(pattern.args()[0]));
  MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> highs,
                            LevelCandidates(pattern.args()[1]));
  for (const std::string& lo : lows) {
    for (const std::string& hi : highs) {
      MULTILOG_ASSIGN_OR_RETURN(bool leq, cdb_->lattice.Leq(lo, hi));
      if (!leq) continue;
      Atom answer("dominate", {Term::Sym(lo), Term::Sym(hi)});
      if (!datalog::UnifyAtoms(pattern, answer, Substitution()).has_value()) {
        continue;
      }
      ProofPtr proof =
          MakeProof(lo == hi ? "reflexivity" : "transitivity",
                    "<D, " + user_level_ + "> |- " + lo + " <= " + hi);
      MULTILOG_RETURN_IF_ERROR(
          AddAnswer(table, std::move(answer), std::move(proof)));
    }
  }
  return Status::OK();
}

Status Interpreter::ExpandBelief(const Atom& pattern, AnswerTable* table) {
  const auto& args = pattern.args();
  const Term& level_term = args[5];
  const Term& mode_term = args[6];

  std::vector<std::string> modes;
  if (mode_term.IsSymbol()) {
    modes.push_back(mode_term.name());
  } else if (mode_term.IsVariable()) {
    modes = {"fir", "opt", "cau"};
  }
  MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> levels,
                            LevelCandidates(level_term));

  for (const std::string& mode : modes) {
    for (const std::string& level : levels) {
      const Term l = Term::Sym(level);

      auto emit = [&](const Atom& rel_answer, ProofPtr descend) -> Status {
        Atom answer("bel",
                    {rel_answer.args()[0], rel_answer.args()[1],
                     rel_answer.args()[2], rel_answer.args()[3],
                     rel_answer.args()[4], l, Term::Sym(mode)});
        if (!datalog::UnifyAtoms(pattern, answer, Substitution())
                 .has_value()) {
          return Status::OK();
        }
        ProofPtr proof = MakeProof(
            "belief", "<D, " + user_level_ + "> |- " + DecodeAtom(answer),
            {std::move(descend)});
        return AddAnswer(table, std::move(answer), std::move(proof));
      };

      if (mode == "fir") {
        // Trivially captured by DEDUCTION-G' at the b-atom's own level.
        Atom rel("rel", {args[0], args[1], args[2], args[3], args[4], l});
        MULTILOG_RETURN_IF_ERROR(SolveCallOnce(rel));
        auto it = tables_.find(MakeCallKey(rel));
        if (it == tables_.end()) continue;
        const std::vector<TabledAnswer> answers = it->second.answers;
        for (const TabledAnswer& ra : answers) {
          MULTILOG_RETURN_IF_ERROR(emit(ra.atom, ra.proof));
        }
      } else if (mode == "opt") {
        MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> below,
                                  cdb_->lattice.DownSet(level));
        for (const std::string& r : below) {
          Atom rel("rel", {args[0], args[1], args[2], args[3], args[4],
                           Term::Sym(r)});
          MULTILOG_RETURN_IF_ERROR(SolveCallOnce(rel));
          auto it = tables_.find(MakeCallKey(rel));
          if (it == tables_.end()) continue;
          const std::vector<TabledAnswer> answers = it->second.answers;
          for (const TabledAnswer& ra : answers) {
            ProofPtr leq = MakeProof(
                r == level ? "reflexivity" : "transitivity",
                "<D, " + user_level_ + "> |- " + r + " <= " + level);
            ProofPtr descend =
                MakeProof("descend-o",
                          "<D, " + user_level_ + "> |- " +
                              DecodeAtom(ra.atom) + " with " + r +
                              " <= " + level,
                          {std::move(leq), ra.proof});
            MULTILOG_RETURN_IF_ERROR(emit(ra.atom, std::move(descend)));
          }
        }
      } else if (mode == "cau") {
        // Complete the visible-cell tables for every level below, then
        // keep the classification-maximal cells (Definition 3.1).
        MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> below,
                                  cdb_->lattice.DownSet(level));
        ++rename_counter_;
        const Term v_any = Term::Var("_cauV" + std::to_string(rename_counter_));
        const Term c_any = Term::Var("_cauC" + std::to_string(rename_counter_));
        struct VisibleCell {
          Atom atom;
          ProofPtr proof;
          std::string from_level;
        };
        std::vector<VisibleCell> visible;
        for (const std::string& r : below) {
          Atom rel("rel",
                   {args[0], args[1], args[2], v_any, c_any, Term::Sym(r)});
          MULTILOG_RETURN_IF_ERROR(CompleteCall(rel));
          auto it = tables_.find(MakeCallKey(rel));
          if (it == tables_.end()) continue;
          for (const TabledAnswer& ra : it->second.answers) {
            visible.push_back(VisibleCell{ra.atom, ra.proof, r});
          }
        }
        for (const VisibleCell& cell : visible) {
          // Overridden when a sibling cell for the same (p, k, a) carries
          // a strictly dominating classification.
          bool overridden = false;
          for (const VisibleCell& other : visible) {
            if (other.atom.args()[0] != cell.atom.args()[0] ||
                other.atom.args()[1] != cell.atom.args()[1] ||
                other.atom.args()[2] != cell.atom.args()[2]) {
              continue;
            }
            const Term& c1 = cell.atom.args()[4];
            const Term& c2 = other.atom.args()[4];
            if (!c1.IsSymbol() || !c2.IsSymbol()) continue;
            MULTILOG_ASSIGN_OR_RETURN(bool lt,
                                      cdb_->lattice.Lt(c1.name(), c2.name()));
            if (lt) {
              overridden = true;
              break;
            }
          }
          if (overridden) continue;
          const bool own_level = cell.from_level == level;
          ProofPtr descend = MakeProof(
              own_level ? "descend-c1" : "descend-c2",
              "<D, " + user_level_ + "> |- " + DecodeAtom(cell.atom) +
                  " maximal among cells visible at " + level,
              {cell.proof});
          MULTILOG_RETURN_IF_ERROR(emit(cell.atom, std::move(descend)));
        }
      }
      // Unknown built-in mode names fall through to USER-BELIEF clause
      // resolution, performed by the caller.
    }
  }
  return Status::OK();
}

Status Interpreter::ExpandFilter(const Atom& pattern, AnswerTable* table) {
  const auto& args = pattern.args();
  MULTILOG_ASSIGN_OR_RETURN(std::vector<std::string> levels,
                            LevelCandidates(args[5]));
  for (const std::string& level : levels) {
    for (const std::string& upper : cdb_->lattice.names()) {
      MULTILOG_ASSIGN_OR_RETURN(bool above, cdb_->lattice.Lt(level, upper));
      if (!above) continue;
      ++rename_counter_;
      const Term v_any = Term::Var("_fV" + std::to_string(rename_counter_));
      const Term c_any = Term::Var("_fC" + std::to_string(rename_counter_));
      Atom rel("rel",
               {args[0], args[1], args[2], v_any, c_any, Term::Sym(upper)});
      MULTILOG_RETURN_IF_ERROR(SolveCallOnce(rel));
      auto it = tables_.find(MakeCallKey(rel));
      if (it == tables_.end()) continue;
      const std::vector<TabledAnswer> answers = it->second.answers;
      for (const TabledAnswer& ra : answers) {
        const Term& cell_class = ra.atom.args()[4];
        if (!cell_class.IsSymbol()) continue;
        MULTILOG_ASSIGN_OR_RETURN(bool cell_visible,
                                  cdb_->lattice.Leq(cell_class.name(), level));
        if (cell_visible && options_.enable_filter) {
          // FILTER: inherit the visible part of the higher tuple.
          Atom answer("rel", {ra.atom.args()[0], ra.atom.args()[1],
                              ra.atom.args()[2], ra.atom.args()[3],
                              ra.atom.args()[4], Term::Sym(level)});
          if (datalog::UnifyAtoms(pattern, answer, Substitution())
                  .has_value()) {
            ProofPtr proof = MakeProof(
                "filter",
                "<D, " + user_level_ + "> |- " + DecodeAtom(answer) +
                    " inherited from " + upper,
                {ra.proof});
            MULTILOG_RETURN_IF_ERROR(
                AddAnswer(table, std::move(answer), std::move(proof)));
          }
        } else if (!cell_visible && options_.enable_filter_null) {
          // FILTER-NULL: the hidden cell surfaces as a null classified
          // at the inheriting level.
          Atom answer("rel", {ra.atom.args()[0], ra.atom.args()[1],
                              ra.atom.args()[2], NullTerm(), Term::Sym(level),
                              Term::Sym(level)});
          if (datalog::UnifyAtoms(pattern, answer, Substitution())
                  .has_value()) {
            ProofPtr proof = MakeProof(
                "filter-null",
                "<D, " + user_level_ + "> |- " + DecodeAtom(answer) +
                    " masking a cell above " + level + " from " + upper,
                {ra.proof});
            MULTILOG_RETURN_IF_ERROR(
                AddAnswer(table, std::move(answer), std::move(proof)));
          }
        }
      }
    }
  }
  return Status::OK();
}

Status Interpreter::SolveCallOnce(const Atom& pattern) {
  static const datalog::PredicateId kRel6("rel/6");
  static const datalog::PredicateId kBel7("bel/7");
  static const datalog::PredicateId kDominate2("dominate/2");
  const CallKey key = MakeCallKey(pattern);
  if (active_.count(key)) return Status::OK();
  if (cancel_ != nullptr && cancel_->Cancelled()) {
    return Status::DeadlineExceeded(
        "operational evaluation cancelled (deadline exceeded)");
  }
  active_.insert(key);
  ++stats_.calls;

  AnswerTable& table = tables_[key];
  Status st;
  const datalog::PredicateId id = pattern.PredicateId();
  if (id == kDominate2) {
    st = ExpandDominate(pattern, &table);
  } else if (id == kBel7) {
    st = ExpandBelief(pattern, &table);
    if (st.ok()) st = ExpandClauses(pattern, &table);  // USER-BELIEF
  } else if (id == kRel6) {
    st = ExpandClauses(pattern, &table);
    if (st.ok() && (options_.enable_filter || options_.enable_filter_null)) {
      st = ExpandFilter(pattern, &table);
    }
  } else {
    st = ExpandClauses(pattern, &table);
  }

  active_.erase(key);
  return st;
}

Status Interpreter::CompleteCall(const Atom& pattern) {
  size_t before;
  do {
    before = stats_.tabled_answers;
    MULTILOG_RETURN_IF_ERROR(SolveCallOnce(pattern));
  } while (stats_.tabled_answers != before);
  return Status::OK();
}

Result<std::vector<Interpreter::Answer>> Interpreter::Solve(
    const std::vector<MlLiteral>& goal, const CancelToken* cancel) {
  MULTILOG_ASSIGN_OR_RETURN(std::vector<Literal> literals,
                            TranslateGoalGeneric(goal, user_level_));
  return SolveLiterals(literals, cancel);
}

Result<std::vector<Interpreter::Answer>> Interpreter::SolveLiterals(
    const std::vector<Literal>& goal, const CancelToken* cancel) {
  cancel_ = cancel;
  // Clear the token on every exit path so a later Solve without a token
  // never observes a stale one.
  struct ClearCancel {
    const CancelToken** slot;
    ~ClearCancel() { *slot = nullptr; }
  } clear_cancel{&cancel_};

  std::vector<Symbol> goal_vars;
  for (const Literal& l : goal) l.CollectVariables(&goal_vars);
  std::sort(goal_vars.begin(), goal_vars.end());
  goal_vars.erase(std::unique(goal_vars.begin(), goal_vars.end()),
                  goal_vars.end());

  std::vector<Match> matches;
  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    if (cancel_ != nullptr && cancel_->Cancelled()) {
      return Status::DeadlineExceeded(
          "operational evaluation cancelled (deadline exceeded)");
    }
    ++stats_.passes;
    active_.clear();
    size_t before = stats_.tabled_answers;
    matches.clear();
    MULTILOG_RETURN_IF_ERROR(SolveBody(goal, 0, Match{}, &matches));
    if (stats_.tabled_answers == before) break;
    if (pass + 1 == options_.max_passes) {
      return Status::ResourceExhausted(
          "operational evaluation did not converge within max_passes");
    }
  }

  std::set<std::string> seen;
  std::vector<Answer> answers;
  for (Match& m : matches) {
    Substitution restricted;
    for (Symbol v : goal_vars) {
      Term value = m.subst.Apply(Term::Var(v));
      if (!value.IsVariable()) restricted.Bind(v, value);
    }
    if (!seen.insert(restricted.ToString()).second) continue;
    ProofPtr proof;
    if (m.proofs.empty()) {
      proof = MakeProof("empty", "[]");
    } else if (m.proofs.size() == 1) {
      proof = m.proofs.front();
    } else {
      proof = MakeProof("and", "<D, " + user_level_ + "> |- (goal)",
                        std::move(m.proofs));
    }
    answers.push_back(Answer{std::move(restricted), std::move(proof)});
  }
  std::sort(answers.begin(), answers.end(),
            [](const Answer& a, const Answer& b) {
              return a.subst.ToString() < b.subst.ToString();
            });
  return answers;
}

}  // namespace multilog::ml
