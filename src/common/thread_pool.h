#ifndef MULTILOG_COMMON_THREAD_POOL_H_
#define MULTILOG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace multilog {

/// A small fixed-size worker pool for data-parallel evaluation rounds.
///
/// The pool owns `num_workers` threads that drain a FIFO task queue.
/// `ParallelFor(n, fn)` is the only interface the evaluator needs: it
/// runs `fn(0) .. fn(n-1)` across the workers *and the calling thread*
/// (so a pool built with `num_workers = k` gives `k + 1`-way
/// parallelism), returning only after every index has completed. Work
/// is distributed by atomic index-stealing, so uneven item costs
/// balance automatically.
///
/// Thread-safety: Submit and ParallelFor may be called from any thread;
/// concurrent ParallelFor calls from different threads interleave their
/// items on the same workers. `fn` must itself be safe to invoke
/// concurrently on distinct indices.
class ThreadPool {
 public:
  /// Starts `num_workers` threads (0 is allowed: everything then runs
  /// inline on the calling thread).
  explicit ThreadPool(size_t num_workers);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  /// The caller participates, so items run with up to
  /// `num_workers() + 1` way parallelism.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace multilog

#endif  // MULTILOG_COMMON_THREAD_POOL_H_
