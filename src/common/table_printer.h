#ifndef MULTILOG_COMMON_TABLE_PRINTER_H_
#define MULTILOG_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace multilog {

/// Renders rows of strings as an aligned ASCII table, in the visual style
/// of the paper's figures:
///
///   +----------+---+------------+---+
///   | Starship |   | Objective  |   |
///   +----------+---+------------+---+
///   | Avenger  | S | Shipping   | S |
///   +----------+---+------------+---+
///
/// Used by the bench binaries that regenerate Figures 1-8 and by the
/// examples. Rows shorter than the header are padded with empty cells.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one data row.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

  /// Renders the full table, trailing newline included.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace multilog

#endif  // MULTILOG_COMMON_TABLE_PRINTER_H_
