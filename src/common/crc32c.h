#ifndef MULTILOG_COMMON_CRC32C_H_
#define MULTILOG_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace multilog {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) -
/// the checksum used by the storage layer to frame WAL records and
/// snapshot bodies. Chosen over CRC-32 (IEEE) for its better error
/// detection on short records; this is the same polynomial RocksDB,
/// LevelDB, and ext4 use for their journals. Software slice-by-4
/// implementation: no SSE4.2 dependency, so the container's baseline
/// toolchain builds it everywhere, at ~1 GB/s which is far above the
/// fsync-bound WAL append path it protects.
///
/// `Crc32c(data)` computes the checksum of one buffer;
/// `Crc32cExtend(crc, data)` continues a running checksum, so framed
/// writers can checksum header and payload without concatenating.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace multilog

#endif  // MULTILOG_COMMON_CRC32C_H_
