#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace multilog {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-batch state, shared with the helper tasks. `fn` is captured by
  // reference: safe because this frame blocks until every helper that
  // could touch it has finished.
  struct Batch {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t live_helpers = 0;
  };
  auto batch = std::make_shared<Batch>();

  // No point waking more helpers than there are items beyond the one
  // the caller will take.
  const size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    batch->live_helpers = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    Submit([batch, &fn, n] {
      for (;;) {
        const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      std::lock_guard<std::mutex> lock(batch->mu);
      if (--batch->live_helpers == 0) batch->done_cv.notify_all();
    });
  }

  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
  }

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->live_helpers == 0; });
}

}  // namespace multilog
