#ifndef MULTILOG_COMMON_SYMBOL_H_
#define MULTILOG_COMMON_SYMBOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace multilog {

/// A 32-bit handle to an interned string. Equality and hashing are
/// integer operations; `str()` resolves against the global SymbolTable
/// in O(1) without locking. Ordering (`operator<`) is *lexicographic*
/// on the resolved text, so `std::set<Symbol>` / `std::map<Symbol, V>`
/// iterate in exactly the order the string-keyed containers they
/// replace did - the engine's deterministic output ordering depends on
/// this.
///
/// Symbol ids are assigned in interning order and are stable for the
/// lifetime of the process. Id 0 is always the empty string, so a
/// default-constructed Symbol is valid.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t id) : id_(id) {}

  /// Interns `text` (or finds its existing id).
  static Symbol Intern(std::string_view text);

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  /// The interned text; the reference is stable for the process
  /// lifetime (arena-backed).
  const std::string& str() const;

  bool operator==(Symbol other) const { return id_ == other.id_; }
  bool operator!=(Symbol other) const { return id_ != other.id_; }

  /// Lexicographic order on the resolved text (see class comment).
  bool operator<(Symbol other) const {
    return id_ != other.id_ && str() < other.str();
  }

  size_t Hash() const {
    // Fibonacci scramble so sequential ids spread across buckets.
    return static_cast<size_t>(id_) * 0x9e3779b97f4a7c15ULL;
  }

 private:
  uint32_t id_ = 0;
};

struct SymbolHash {
  size_t operator()(Symbol s) const { return s.Hash(); }
};

/// Process-wide intern table. Thread-safe: `Intern` takes a shared
/// lock on the hit path (an exclusive lock only when inserting a new
/// string); `NameOf` is lock-free - resolved strings live in
/// fixed-size arena blocks whose addresses never move, published with
/// release/acquire ordering.
class SymbolTable {
 public:
  static SymbolTable& Global();

  uint32_t Intern(std::string_view text);

  /// Resolves an id previously returned by Intern. The reference is
  /// stable for the lifetime of the process.
  const std::string& NameOf(uint32_t id) const;

  /// Number of distinct symbols interned so far (>= 1: id 0 is "").
  size_t size() const { return size_.load(std::memory_order_acquire); }

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

 private:
  SymbolTable();

  static constexpr uint32_t kBlockBits = 12;  // 4096 strings per block
  static constexpr uint32_t kBlockSize = 1u << kBlockBits;
  static constexpr uint32_t kMaxBlocks = 1u << 12;  // ~16.7M symbols

  struct Block {
    std::string strings[kBlockSize];
  };

  /// Appends `text` under the exclusive lock; returns its new id.
  uint32_t Append(std::string_view text);

  std::atomic<Block*> blocks_[kMaxBlocks] = {};
  std::atomic<uint32_t> size_{0};

  mutable std::shared_mutex mu_;
  /// Keys view into the arena blocks, so they stay valid forever.
  std::unordered_map<std::string_view, uint32_t> ids_;
};

inline Symbol Symbol::Intern(std::string_view text) {
  return Symbol(SymbolTable::Global().Intern(text));
}

inline const std::string& Symbol::str() const {
  return SymbolTable::Global().NameOf(id_);
}

}  // namespace multilog

namespace std {
template <>
struct hash<multilog::Symbol> {
  size_t operator()(multilog::Symbol s) const { return s.Hash(); }
};
}  // namespace std

#endif  // MULTILOG_COMMON_SYMBOL_H_
