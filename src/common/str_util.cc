#include "common/str_util.h"

#include <cctype>

namespace multilog {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace multilog
