#ifndef MULTILOG_COMMON_RESULT_H_
#define MULTILOG_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace multilog {

/// A value-or-error type (the exception-free analogue of a throwing
/// function): either holds a T or a non-OK Status explaining why no T
/// could be produced.
///
///   Result<Program> r = Parser::Parse(text);
///   if (!r.ok()) return r.status();
///   Program p = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. Intentionally implicit so
  /// `return Status::...` and MULTILOG_RETURN_IF_ERROR work.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in the error state.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `expr` (a Result<T>), propagating its error; on success
/// assigns the value to `lhs`. `lhs` must be a declaration or assignable.
#define MULTILOG_ASSIGN_OR_RETURN(lhs, expr)           \
  MULTILOG_ASSIGN_OR_RETURN_IMPL_(                     \
      MULTILOG_RESULT_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define MULTILOG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define MULTILOG_RESULT_CONCAT_(a, b) MULTILOG_RESULT_CONCAT_IMPL_(a, b)
#define MULTILOG_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace multilog

#endif  // MULTILOG_COMMON_RESULT_H_
