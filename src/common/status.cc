#include "common/status.h"

namespace multilog {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidProgram:
      return "InvalidProgram";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kSecurityViolation:
      return "SecurityViolation";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace multilog
