#ifndef MULTILOG_COMMON_STR_UTIL_H_
#define MULTILOG_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace multilog {

/// Splits `s` on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True for [A-Za-z_][A-Za-z0-9_]* — the lexical shape shared by
/// predicate names, attribute names, and plain constants.
bool IsIdentifier(std::string_view s);

}  // namespace multilog

#endif  // MULTILOG_COMMON_STR_UTIL_H_
