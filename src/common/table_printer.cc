#include "common/table_printer.h"

#include <algorithm>

namespace multilog {

namespace {

/// Display width in terminal columns: counts UTF-8 code points, not
/// bytes, so the figures' ⊥ cells stay aligned. (All code points used
/// here are single-column.)
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // not a UTF-8 continuation byte
  }
  return width;
}

std::string Separator(const std::vector<size_t>& widths) {
  std::string line = "+";
  for (size_t w : widths) {
    line.append(w + 2, '-');
    line += '+';
  }
  line += '\n';
  return line;
}

void AppendRow(std::string* out, const std::vector<std::string>& row,
               const std::vector<size_t>& widths) {
  *out += '|';
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < row.size() ? row[i] : std::string();
    *out += ' ';
    *out += cell;
    out->append(widths[i] - DisplayWidth(cell) + 1, ' ');
    *out += '|';
  }
  *out += '\n';
}

}  // namespace

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = DisplayWidth(header_[i]);
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], DisplayWidth(row[i]));
    }
  }

  std::string out = Separator(widths);
  AppendRow(&out, header_, widths);
  out += Separator(widths);
  for (const auto& row : rows_) {
    AppendRow(&out, row, widths);
  }
  out += Separator(widths);
  return out;
}

}  // namespace multilog
