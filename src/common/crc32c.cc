#include "common/crc32c.h"

#include <array>

namespace multilog {

namespace {

/// Slice-by-4 lookup tables, generated once at first use from the
/// reflected Castagnoli polynomial. Table 0 is the classic byte-at-a-
/// time table; tables 1-3 fold in the effect of shifting a byte 1-3
/// positions further, letting the hot loop consume 4 bytes per step.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t{};

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace multilog
