#ifndef MULTILOG_COMMON_STATUS_H_
#define MULTILOG_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace multilog {

/// Error categories used across the library. The taxonomy follows the
/// needs of a deductive-database stack: parse-time, check-time (static
/// analysis of programs), and run-time (evaluation) failures are kept
/// distinct so callers can react differently to each.
enum class StatusCode {
  kOk = 0,
  /// Malformed textual input (MultiLog, Datalog, or MSQL source).
  kParseError,
  /// A program failed a static well-formedness check (safety,
  /// stratification, admissibility, consistency, scheme mismatch...).
  kInvalidProgram,
  /// A request referenced an entity that does not exist (unknown level,
  /// predicate, attribute, relation, belief mode...).
  kNotFound,
  /// An argument violated a documented precondition.
  kInvalidArgument,
  /// The operation would violate an MLS security policy (e.g. a write
  /// below the subject's clearance, a read above it).
  kSecurityViolation,
  /// An MLS integrity property (entity, null, polyinstantiation,
  /// subsumption-freeness) would be or is violated.
  kIntegrityViolation,
  /// Evaluation exceeded a configured resource bound (depth, steps).
  kResourceExhausted,
  /// The query's deadline passed or it was cancelled mid-evaluation
  /// (cooperative cancellation, see common/cancel.h). Distinct from
  /// kResourceExhausted: the *caller's* budget ran out, not the
  /// engine's, so retrying with a longer deadline is reasonable.
  kDeadlineExceeded,
  /// Durable state could not be read back intact: a torn or corrupted
  /// WAL tail was truncated during recovery, a snapshot failed its
  /// checksum, or a record was lost. Distinct from kInternal: the
  /// in-memory engine is healthy, but some previously acknowledged
  /// writes may be gone, and the operator should know.
  kDataLoss,
  /// The node cannot accept this write: it is a read-only replica that
  /// applies mutations only from its primary's log. Distinct from
  /// kSecurityViolation (the write may be perfectly legal - on the
  /// primary) so clients can redirect instead of giving up.
  kReadOnly,
  /// A required remote participant (an engine shard behind the router)
  /// could not be reached or died mid-request. The answer would be
  /// *incomplete*, so nothing is returned. Distinct from
  /// kDeadlineExceeded: the budget may be fine, the peer is not; the
  /// request is safe to retry once the shard is back.
  kUnavailable,
  /// An invariant the implementation relies on was broken; a bug.
  kInternal,
};

/// Returns a stable, human-readable name such as "ParseError".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value in the RocksDB/Arrow idiom.
/// The library does not use exceptions; every fallible operation returns
/// a Status (or a Result<T>, see result.h).
///
/// Statuses are cheap to copy in the OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidProgram(std::string msg) {
    return Status(StatusCode::kInvalidProgram, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status SecurityViolation(std::string msg) {
    return Status(StatusCode::kSecurityViolation, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInvalidProgram() const { return code_ == StatusCode::kInvalidProgram; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsSecurityViolation() const {
    return code_ == StatusCode::kSecurityViolation;
  }
  bool IsIntegrityViolation() const {
    return code_ == StatusCode::kIntegrityViolation;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsReadOnly() const { return code_ == StatusCode::kReadOnly; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the
  /// message, separated by ": ". OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Usable in any function
/// returning Status (or Result<T>, which converts from Status).
#define MULTILOG_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::multilog::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace multilog

#endif  // MULTILOG_COMMON_STATUS_H_
