#include "common/trace.h"

namespace multilog::trace {

namespace {

std::atomic<bool> g_enabled{false};

struct StageAggregate {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_micros{0};
};

StageAggregate g_aggregates[kNumStages];

thread_local Collector* tl_collector = nullptr;

void RecordAggregate(Stage stage, uint64_t micros) {
  StageAggregate& agg = g_aggregates[static_cast<size_t>(stage)];
  agg.count.fetch_add(1, std::memory_order_relaxed);
  agg.total_micros.fetch_add(micros, std::memory_order_relaxed);
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRequest:
      return "request";
    case Stage::kParse:
      return "parse";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kExecute:
      return "execute";
    case Stage::kSerialize:
      return "serialize";
    case Stage::kOperationalSolve:
      return "operational_solve";
    case Stage::kReduce:
      return "reduce";
    case Stage::kPlanLookup:
      return "plan_lookup";
    case Stage::kMagicRewrite:
      return "magic_rewrite";
    case Stage::kEvalModel:
      return "eval_model";
    case Stage::kDecodeModel:
      return "decode_model";
    case Stage::kQueryModel:
      return "query_model";
    case Stage::kCheckCompare:
      return "check_compare";
    case Stage::kEvalRound:
      return "eval_round";
    case Stage::kEvalJoin:
      return "eval_join";
    case Stage::kEvalMerge:
      return "eval_merge";
    case Stage::kBeliefFirm:
      return "belief_firm";
    case Stage::kBeliefOptimistic:
      return "belief_optimistic";
    case Stage::kBeliefCautious:
      return "belief_cautious";
    case Stage::kValidate:
      return "validate";
    case Stage::kWalAppend:
      return "wal_append";
    case Stage::kFsync:
      return "fsync";
    case Stage::kRecovery:
      return "recovery";
    case Stage::kDeltaReduce:
      return "delta_reduce";
    case Stage::kDeltaEval:
      return "delta_eval";
    case Stage::kRegroup:
      return "regroup";
    case Stage::kReplicaApply:
      return "replica_apply";
    case Stage::kSqlExecute:
      return "sql_execute";
  }
  return "unknown";
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::array<StageTotal, kNumStages> AggregatedStages() {
  std::array<StageTotal, kNumStages> out{};
  for (size_t i = 0; i < kNumStages; ++i) {
    out[i].count = g_aggregates[i].count.load(std::memory_order_relaxed);
    out[i].total_micros =
        g_aggregates[i].total_micros.load(std::memory_order_relaxed);
  }
  return out;
}

void ResetAggregates() {
  for (StageAggregate& agg : g_aggregates) {
    agg.count.store(0, std::memory_order_relaxed);
    agg.total_micros.store(0, std::memory_order_relaxed);
  }
}

void Collector::OpenSpan(Stage stage) {
  if (dropped_depth_ > 0 || nodes_ >= kMaxNodes) {
    ++dropped_depth_;
    ++dropped_spans_;
    return;
  }
  SpanNode* parent = open_.back();
  parent->children.push_back(SpanNode{stage, 0, 0, {}});
  open_.push_back(&parent->children.back());
  ++nodes_;
}

void Collector::CloseSpan(Clock::time_point start, Clock::time_point end) {
  if (dropped_depth_ > 0) {
    --dropped_depth_;
    return;
  }
  if (open_.size() <= 1) return;  // unbalanced close: ignore, keep the root
  SpanNode* node = open_.back();
  open_.pop_back();
  node->start_micros = SinceEpoch(start);
  node->duration_micros = SinceEpoch(end) - node->start_micros;
}

void Collector::AddLeaf(Stage stage, Clock::time_point start,
                        Clock::time_point end) {
  if (nodes_ >= kMaxNodes) {
    ++dropped_spans_;
    return;
  }
  const uint64_t start_us = SinceEpoch(start);
  SpanNode* parent = open_.back();
  parent->children.push_back(
      SpanNode{stage, start_us, SinceEpoch(end) - start_us, {}});
  ++nodes_;
  RecordAggregate(stage, SinceEpoch(end) - start_us);
}

SpanNode Collector::Finish(Clock::time_point end) {
  root_.start_micros = 0;
  root_.duration_micros = SinceEpoch(end);
  open_.clear();
  RecordAggregate(root_.stage, root_.duration_micros);
  return std::move(root_);
}

Collector* CurrentCollector() { return tl_collector; }

ScopedCollector::ScopedCollector(Collector* collector)
    : previous_(tl_collector) {
  tl_collector = collector;
}

ScopedCollector::~ScopedCollector() { tl_collector = previous_; }

Span::~Span() {
  if (!active_) return;
  const Collector::Clock::time_point end = Collector::Clock::now();
  RecordAggregate(
      stage_,
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
              .count()));
  if (collector_ != nullptr) collector_->CloseSpan(start_, end);
}

}  // namespace multilog::trace
