#ifndef MULTILOG_COMMON_TRACE_H_
#define MULTILOG_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace multilog::trace {

/// # Per-stage tracing
///
/// A lock-free span/counter facility instrumenting the query path end
/// to end: the server (parse, queue wait, execute, serialize), the
/// MultiLog engine (reduction, model evaluation, operational solving,
/// belief computation per mode), the Datalog evaluator (per-round join
/// and merge), and storage (validation, WAL append, fsync, recovery).
///
/// Two consumers, two mechanisms:
///
///  - **Global aggregates**: one (count, total µs) pair of relaxed
///    atomics per stage, fed by every active span on any thread. The
///    server republishes them through the Prometheus `metrics` command.
///  - **Per-query span trees**: a `Collector` installed on the current
///    thread (`ScopedCollector`) captures nested spans as a tree with
///    start offsets and durations, which the server attaches to the
///    response when the client asked for `"trace": true` and feeds the
///    slow-query log.
///
/// A span is *active* when the global enable flag is set **or** a
/// collector is installed on the constructing thread; otherwise the
/// constructor is one relaxed atomic load plus one thread-local read
/// and the destructor a branch - the "~zero cost when disabled"
/// contract that bench_trace_overhead pins.
///
/// ## Thread-safety
///
/// The aggregate arrays are plain relaxed atomics - any thread, any
/// time. A Collector is strictly thread-local: only the thread that
/// installed it (via ScopedCollector) may open/close spans on it, and
/// handoff across threads (the server creates it on the reader thread,
/// the worker fills it, the reader serializes it) must be synchronized
/// externally - the server's promise/future pair provides the
/// happens-before edges. Spans on threads *without* a collector (e.g.
/// evaluator workers inside ParallelFor) feed the aggregates only.

/// The stage taxonomy (DESIGN.md §13). Order is the exposition order.
enum class Stage : uint8_t {
  // Server request lifecycle.
  kRequest = 0,   // whole request: root of every span tree
  kParse,         // frame read + JSON parse + schema validation
  kQueueWait,     // dispatch submit -> worker pickup
  kExecute,       // handler on the worker (engine or SQL work inside)
  kSerialize,     // building the response JSON
  // Engine query path.
  kOperationalSolve,  // Section 5 proof system (interpreter Solve)
  kReduce,            // CORAL-style reduction tau(Delta)+A (Section 6)
  kPlanLookup,        // compiled magic-plan cache probe
  kMagicRewrite,      // magic-sets rewrite + plan compile on a miss
  kEvalModel,         // bottom-up evaluation of the reduced program
  kDecodeModel,       // de-specializing rel__l facts back to rel/6
  kQueryModel,        // matching the goal against the cached model
  kCheckCompare,      // kCheckBoth answer comparison (Theorem 6.1)
  // Datalog evaluator (per semi-naive round, on the calling thread).
  kEvalRound,  // one round: join + dedup/merge
  kEvalJoin,   // the round's rule applications (parallel section)
  kEvalMerge,  // deterministic model insert / next-delta build
  // Belief computation by mode (Definition 3.1).
  kBeliefFirm,
  kBeliefOptimistic,
  kBeliefCautious,
  // Mutation / storage path.
  kValidate,   // security pinning + Definition 5.4 integrity
  kWalAppend,  // WAL record framing + write
  kFsync,      // fdatasync of the WAL
  kRecovery,   // Storage::Open (snapshot read + WAL replay)
  // Incremental view maintenance (the post-commit delta path).
  kDeltaReduce,  // incremental tau update of a live reduced program
  kDeltaEval,    // DRed-style delta propagation into a live fixpoint
  kRegroup,      // regrouping a served view (decoded model / cautious beta)
  // Replication (the replica-side apply loop).
  kReplicaApply,  // applying one shipped WAL record through the engine
  // MSQL.
  kSqlExecute,
};
inline constexpr size_t kNumStages = static_cast<size_t>(Stage::kSqlExecute) + 1;

/// Stable lowercase snake-case name ("eval_round", "wal_append", ...)
/// used as the Prometheus label value and the trace-JSON stage name.
const char* StageName(Stage stage);

/// The global enable flag for ambient (aggregate-only) tracing.
bool Enabled();
void SetEnabled(bool on);

/// One stage's global aggregate, snapshotted.
struct StageTotal {
  uint64_t count = 0;
  uint64_t total_micros = 0;
};

/// Snapshot of all per-stage aggregates (relaxed reads; pairs may be
/// mutually torn under concurrent recording, never individually torn).
std::array<StageTotal, kNumStages> AggregatedStages();

/// Zeroes the aggregates. Test/bench use only - racing recorders may
/// leave stragglers behind.
void ResetAggregates();

/// One node of a per-query span tree. Offsets are µs since the
/// collector's epoch (the server sets the epoch when the request's
/// frame has been read, so the root's duration is server-side wall
/// time).
struct SpanNode {
  Stage stage = Stage::kRequest;
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;
  std::vector<SpanNode> children;
};

/// Collects one query's span tree. Strictly single-threaded use; see
/// the file comment for the cross-thread handoff contract.
class Collector {
 public:
  using Clock = std::chrono::steady_clock;

  /// Spans beyond this many nodes are counted, not stored, so a
  /// pathological query cannot balloon its own trace.
  static constexpr size_t kMaxNodes = 512;

  /// `epoch` anchors every node's start offset - the server passes the
  /// instant the request frame finished reading, so the root's duration
  /// is server-side wall time for the whole request.
  explicit Collector(Clock::time_point epoch = Clock::now())
      : epoch_(epoch) {
    root_.stage = Stage::kRequest;
    open_.push_back(&root_);
  }
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  Clock::time_point epoch() const { return epoch_; }

  /// Opens a child span under the innermost open span. Balanced by
  /// CloseSpan; Span does both via RAII.
  void OpenSpan(Stage stage);
  void CloseSpan(Clock::time_point start, Clock::time_point end);

  /// Records an already-measured leaf span (no nesting) under the
  /// innermost open span - used for stages timed on another thread's
  /// clock, like kParse and kQueueWait.
  void AddLeaf(Stage stage, Clock::time_point start, Clock::time_point end);

  /// Closes the root with `end` and returns the finished tree. The
  /// collector must not be used afterwards.
  SpanNode Finish(Clock::time_point end = Clock::now());

  /// Spans dropped by the node budget (reported so a truncated trace
  /// is distinguishable from a complete one).
  uint64_t dropped_spans() const { return dropped_spans_; }

 private:
  uint64_t SinceEpoch(Clock::time_point t) const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
            .count());
  }

  Clock::time_point epoch_;
  SpanNode root_;
  /// The open-span stack. Only the innermost node ever gains children,
  /// so ancestor pointers stay valid while their descendants grow.
  std::vector<SpanNode*> open_;
  size_t nodes_ = 1;  // root
  /// Depth of spans opened past the budget (still balanced on close).
  size_t dropped_depth_ = 0;
  uint64_t dropped_spans_ = 0;
};

/// The collector installed on the current thread, or nullptr.
Collector* CurrentCollector();

/// Installs `collector` as the current thread's collector for the
/// enclosing scope (restores the previous one on destruction).
class ScopedCollector {
 public:
  explicit ScopedCollector(Collector* collector);
  ~ScopedCollector();
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  Collector* previous_;
};

/// RAII span: times the enclosing scope as `stage`. Inactive (two
/// loads, no clock call) unless tracing is enabled globally or the
/// thread has a collector.
class Span {
 public:
  explicit Span(Stage stage)
      : stage_(stage), collector_(CurrentCollector()) {
    active_ = collector_ != nullptr || Enabled();
    if (active_) {
      if (collector_ != nullptr) collector_->OpenSpan(stage_);
      start_ = Collector::Clock::now();
    }
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Stage stage_;
  Collector* collector_;
  bool active_;
  Collector::Clock::time_point start_;
};

}  // namespace multilog::trace

#endif  // MULTILOG_COMMON_TRACE_H_
