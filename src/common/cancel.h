#ifndef MULTILOG_COMMON_CANCEL_H_
#define MULTILOG_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

namespace multilog {

/// A cooperative cancellation token shared between a query's issuer and
/// the evaluation machinery. The issuer either calls Cancel() (explicit
/// abort) or arms a deadline; the evaluator polls Cancelled() at
/// derivation-rate checkpoints (the EmitBudget charge path, round
/// boundaries, tabled-answer insertion) and unwinds with
/// kDeadlineExceeded. Polling is the contract: a query inside one giant
/// join round stops at its next emission, not instantly.
///
/// Thread-safety: Cancel() and Cancelled() may race freely from any
/// thread. SetDeadline/ClearDeadline must happen before the token is
/// shared with the evaluation (the server arms the deadline before
/// dispatching the query); once a deadline has expired the token latches
/// cancelled, so later polls are a single relaxed load.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation explicitly.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the deadline: Cancelled() reports true once `deadline` passes.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Convenience: a deadline `timeout` from now. Non-positive timeouts
  /// arm an already-expired deadline (useful for tests and for the
  /// server's "deadline_ms: 0" probe requests).
  void SetTimeout(std::chrono::nanoseconds timeout) {
    SetDeadline(std::chrono::steady_clock::now() + timeout);
  }

  /// True once Cancel() was called or the armed deadline has passed.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);  // latch
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace multilog

#endif  // MULTILOG_COMMON_CANCEL_H_
