#include "common/symbol.h"

#include <cassert>
#include <mutex>

namespace multilog {

SymbolTable& SymbolTable::Global() {
  // Leaked singleton: symbol storage must outlive every static
  // destructor that might still resolve a Symbol.
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolTable::SymbolTable() {
  std::unique_lock lock(mu_);
  uint32_t id = Append("");
  (void)id;
  assert(id == 0);
}

uint32_t SymbolTable::Intern(std::string_view text) {
  {
    std::shared_lock lock(mu_);
    auto it = ids_.find(text);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = ids_.find(text);  // racing interner may have won
  if (it != ids_.end()) return it->second;
  return Append(text);
}

uint32_t SymbolTable::Append(std::string_view text) {
  const uint32_t id = size_.load(std::memory_order_relaxed);
  const uint32_t block_index = id >> kBlockBits;
  assert(block_index < kMaxBlocks && "symbol table full");
  Block* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    blocks_[block_index].store(block, std::memory_order_release);
  }
  std::string& slot = block->strings[id & (kBlockSize - 1)];
  slot.assign(text.data(), text.size());
  ids_.emplace(std::string_view(slot), id);
  // Publish: a reader that acquires `size_ > id` sees the block
  // pointer and the constructed string.
  size_.store(id + 1, std::memory_order_release);
  return id;
}

const std::string& SymbolTable::NameOf(uint32_t id) const {
  [[maybe_unused]] const uint32_t published =
      size_.load(std::memory_order_acquire);
  assert(id < published && "unresolvable symbol id");
  const Block* block =
      blocks_[id >> kBlockBits].load(std::memory_order_acquire);
  return block->strings[id & (kBlockSize - 1)];
}

}  // namespace multilog
