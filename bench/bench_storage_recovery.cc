// Storage benchmark: durable append throughput (every record fsynced),
// checkpoint latency, and crash-recovery time from a long WAL versus
// from a compacted snapshot. Correctness rides along: the recovered
// engine's dumped source is byte-compared against the live engine's,
// and the run exits non-zero on any mismatch.
//
// A validation-flatness phase rides along too: it times per-append
// Definition 5.4 validation over thousands of in-memory appends (no
// fsync, so validation dominates) and fails the run if the last decile
// of appends is more than 4x slower than the first - the regression
// guard for the key-group index that replaced the O(|Sigma|) per-append
// scan.
//
//   $ bench_storage_recovery [--records N] [--validate-appends N]
//                            [--dir PATH] [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_STORAGE_JSON, or to BENCH_storage.json (in that order).
// scripts/run_experiments.sh picks it up as the persistence experiment.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "server/json.h"
#include "storage/storage.h"

namespace {

using namespace multilog;
using server::Json;

constexpr char kBaseSource[] = R"(
level(u).
level(c).
level(s).
order(u, c).
order(c, s).
u[p(k : a -u-> v)].
c[p(k : a -c-> t)] :- q(j).
q(j).
)";

constexpr const char* kLevels[] = {"u", "c", "s"};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string BenchFact(size_t i) {
  const std::string level = kLevels[i % 3];
  const std::string key = "k" + std::to_string(i);
  return level + "[bench(" + key + " : id -" + level + "-> " + key + ")].";
}

/// Mean of `samples[begin, end)` in µs.
double MeanMicros(const std::vector<double>& samples, size_t begin,
                  size_t end) {
  if (begin >= end) return 0;
  return std::accumulate(samples.begin() + static_cast<ptrdiff_t>(begin),
                         samples.begin() + static_cast<ptrdiff_t>(end), 0.0) /
         static_cast<double>(end - begin);
}

}  // namespace

int main(int argc, char** argv) {
  size_t records = 2000;
  size_t validate_appends = 4000;
  std::string dir;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--records") {
      records = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--validate-appends") {
      validate_appends = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--records N] [--validate-appends N] "
                   "[--dir PATH] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (dir.empty()) {
    dir = "/tmp/multilog_bench_storage_" + std::to_string(::getpid());
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_STORAGE_JSON");
    json_path = env != nullptr ? env : "BENCH_storage.json";
  }

  // A stale data dir from a previous run would reject every append as a
  // duplicate - the benchmark always starts from scratch.
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/snapshot.mls").c_str());

  // --- Append phase: `records` durable writes, one fsync each. -------
  Result<storage::Storage> st = storage::Storage::Open(dir, kBaseSource);
  if (!st.ok()) {
    std::fprintf(stderr, "open: %s\n", st.status().ToString().c_str());
    return 1;
  }
  Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto append_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < records; ++i) {
    const std::string fact = BenchFact(i);
    Result<ml::WriteResult> w = engine->Assert(fact, kLevels[i % 3]);
    if (!w.ok()) {
      std::fprintf(stderr, "assert %s: %s\n", fact.c_str(),
                   w.status().ToString().c_str());
      return 1;
    }
  }
  const double append_ms = MsSince(append_start);
  const uint64_t wal_bytes = engine->StorageStats().wal_bytes;
  const std::string live_dump = engine->DumpSource();

  // --- Recovery from the full WAL (snapshot is still the seed). ------
  const auto wal_recovery_start = std::chrono::steady_clock::now();
  Result<storage::Storage> st_wal = storage::Storage::Open(dir, kBaseSource);
  Result<ml::Engine> from_wal =
      st_wal.ok() ? ml::Engine::FromStorage(&*st_wal)
                  : Result<ml::Engine>(st_wal.status());
  const double wal_recovery_ms = MsSince(wal_recovery_start);
  if (!from_wal.ok()) {
    std::fprintf(stderr, "wal recovery: %s\n",
                 from_wal.status().ToString().c_str());
    return 1;
  }
  if (from_wal->DumpSource() != live_dump) {
    std::fprintf(stderr, "FAIL: WAL recovery diverged from the live model\n");
    return 1;
  }

  // --- Checkpoint, then recovery from the compacted snapshot. --------
  const auto ckpt_start = std::chrono::steady_clock::now();
  if (Status s = engine->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  const double checkpoint_ms = MsSince(ckpt_start);

  const auto snap_recovery_start = std::chrono::steady_clock::now();
  Result<storage::Storage> st_snap = storage::Storage::Open(dir, kBaseSource);
  Result<ml::Engine> from_snap =
      st_snap.ok() ? ml::Engine::FromStorage(&*st_snap)
                   : Result<ml::Engine>(st_snap.status());
  const double snap_recovery_ms = MsSince(snap_recovery_start);
  if (!from_snap.ok()) {
    std::fprintf(stderr, "snapshot recovery: %s\n",
                 from_snap.status().ToString().c_str());
    return 1;
  }
  if (from_snap->DumpSource() != live_dump) {
    std::fprintf(stderr,
                 "FAIL: snapshot recovery diverged from the live model\n");
    return 1;
  }

  // --- Validation flatness: per-append cost must not grow with |Sigma|.
  // In-memory engine (no WAL, no fsync) so Definition 5.4 validation
  // dominates each append; each fact has a fresh key, so with the
  // key-group index every check touches a singleton group no matter how
  // large the database has grown. The old full-scan validator made the
  // last appends ~|Sigma|/2 times slower than the first.
  Result<ml::Engine> mem_engine = ml::Engine::FromSource(kBaseSource);
  if (!mem_engine.ok()) {
    std::fprintf(stderr, "in-memory engine: %s\n",
                 mem_engine.status().ToString().c_str());
    return 1;
  }
  std::vector<double> append_micros;
  append_micros.reserve(validate_appends);
  for (size_t i = 0; i < validate_appends; ++i) {
    const std::string level = kLevels[i % 3];
    const std::string key = "vk" + std::to_string(i);
    const std::string fact =
        level + "[vbench(" + key + " : id -" + level + "-> " + key + ")].";
    const auto start = std::chrono::steady_clock::now();
    Result<ml::WriteResult> w = mem_engine->Assert(fact, level);
    append_micros.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
    if (!w.ok()) {
      std::fprintf(stderr, "in-memory assert %s: %s\n", fact.c_str(),
                   w.status().ToString().c_str());
      return 1;
    }
  }
  const size_t decile = validate_appends / 10;
  const double first_decile_us = MeanMicros(append_micros, 0, decile);
  const double last_decile_us =
      MeanMicros(append_micros, validate_appends - decile, validate_appends);
  const double flatness_ratio =
      first_decile_us > 0 ? last_decile_us / first_decile_us : 0;
  const bool flat = decile == 0 || flatness_ratio < 4.0;
  if (!flat) {
    std::fprintf(stderr,
                 "FAIL: per-append validation cost grew with database size "
                 "(first decile %.2f us, last decile %.2f us, ratio %.1fx "
                 ">= 4x)\n",
                 first_decile_us, last_decile_us, flatness_ratio);
    return 1;
  }

  const double appends_per_sec =
      append_ms > 0 ? static_cast<double>(records) / (append_ms / 1000.0) : 0;
  std::printf(
      "storage: %zu fsynced appends in %.1f ms (%.0f/s, %.3f ms/append)\n"
      "recovery: %.1f ms from %zu-record WAL (%llu bytes), "
      "%.1f ms from compacted snapshot (checkpoint took %.1f ms)\n"
      "byte-identity: WAL and snapshot recovery both match the live model\n"
      "validation: %zu in-memory appends, first decile %.2f us/append, "
      "last decile %.2f us/append (ratio %.2fx, flat)\n",
      records, append_ms, appends_per_sec,
      records > 0 ? append_ms / static_cast<double>(records) : 0,
      wal_recovery_ms, records, static_cast<unsigned long long>(wal_bytes),
      snap_recovery_ms, checkpoint_ms, validate_appends, first_decile_us,
      last_decile_us, flatness_ratio);

  Json record = Json::Object();
  record.Set("bench", Json::Str("storage_recovery"));
  record.Set("records", Json::Int(static_cast<int64_t>(records)));
  record.Set("append_ms", Json::Double(append_ms));
  record.Set("appends_per_sec", Json::Double(appends_per_sec));
  record.Set("wal_bytes", Json::Int(static_cast<int64_t>(wal_bytes)));
  record.Set("wal_recovery_ms", Json::Double(wal_recovery_ms));
  record.Set("checkpoint_ms", Json::Double(checkpoint_ms));
  record.Set("snapshot_recovery_ms", Json::Double(snap_recovery_ms));
  record.Set("byte_identical", Json::Bool(true));
  record.Set("validate_appends", Json::Int(static_cast<int64_t>(validate_appends)));
  record.Set("validate_first_decile_us", Json::Double(first_decile_us));
  record.Set("validate_last_decile_us", Json::Double(last_decile_us));
  record.Set("validate_flatness_ratio", Json::Double(flatness_ratio));
  record.Set("validate_flat", Json::Bool(true));
  std::ofstream out(json_path, std::ios::trunc);
  out << record.Serialize() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
