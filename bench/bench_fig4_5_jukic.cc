// Experiments E4-E5: regenerates Figures 4-5 (the Jukic-Vrbsky labeled
// relation and its fixed interpretation matrix), then times the
// interpretation computation - the baseline belief model the paper
// criticizes as "too restrictive".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mls/sample_data.h"

namespace {

using multilog::mls::BuildMissionDataset;
using multilog::mls::MissionDataset;

const MissionDataset& Dataset() {
  static const MissionDataset& ds = *new MissionDataset(
      []() {
        auto r = BuildMissionDataset();
        if (!r.ok()) std::abort();
        return std::move(r).value();
      }());
  return ds;
}

void PrintFigures() {
  const MissionDataset& ds = Dataset();
  std::printf("Figure 4: Jukic and Vrbsky's view of Mission\n%s\n",
              ds.jv_mission->RenderLabeled().c_str());
  std::printf("Figure 5: Interpretation of tuples at different levels\n%s\n",
              ds.jv_mission->RenderInterpretations({"u", "c", "s"})
                  ->c_str());
}

void BM_InterpretAll(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    for (const auto& t : ds.jv_mission->tuples()) {
      for (const char* level : {"u", "c", "s"}) {
        benchmark::DoNotOptimize(ds.jv_mission->Interpret(t, level));
      }
    }
  }
}

void BM_RenderLabeled(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.jv_mission->RenderLabeled());
  }
}

BENCHMARK(BM_InterpretAll);
BENCHMARK(BM_RenderLabeled);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
