// Experiment E17: scaling of the parametric belief function beta with
// relation size, polyinstantiation depth, and lattice shape - the
// comparison the paper defers to future work ("run a comparison with
// existing relational MLS implementations and MultiLog").
//
// Expected shape: firm is a single scan; optimistic adds the dominance
// test and TC rewrite; cautious pays an extra per-key-group maximality
// pass, so it grows with versions-per-entity. The sigma view (the
// Jajodia-Sandhu baseline) pays subsumption, which is quadratic in the
// per-key version count.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "mls/belief.h"
#include "mls/sample_data.h"

namespace {

using namespace multilog;
using namespace multilog::mls;

const lattice::SecurityLattice& Chain4() {
  static const auto& lat =
      *new lattice::SecurityLattice(lattice::SecurityLattice::Military());
  return lat;
}

const lattice::SecurityLattice& Diamond() {
  static const auto& lat = *new lattice::SecurityLattice([]() {
    lattice::SecurityLattice::Builder b;
    b.AddLevel("bot").AddLevel("l1").AddLevel("l2").AddLevel("top");
    b.AddOrder("bot", "l1").AddOrder("bot", "l2");
    b.AddOrder("l1", "top").AddOrder("l2", "top");
    return std::move(b.Build()).value();
  }());
  return lat;
}

Relation MakeRelation(const lattice::SecurityLattice& lat, size_t entities,
                      size_t versions) {
  auto rel = BuildSyntheticRelation(lat, entities, versions, /*seed=*/42);
  if (!rel.ok()) std::abort();
  return std::move(rel).value();
}

void BM_BetaVsEntities(benchmark::State& state, BeliefMode mode) {
  Relation rel = MakeRelation(Chain4(), state.range(0), 3);
  const std::string top = Chain4().MaximalElements().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Believe(rel, top, mode));
  }
  state.SetComplexityN(state.range(0));
}

void BM_BetaVsVersions(benchmark::State& state, BeliefMode mode) {
  Relation rel = MakeRelation(Chain4(), 64, state.range(0));
  const std::string top = Chain4().MaximalElements().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Believe(rel, top, mode));
  }
}

void BM_SigmaViewVsEntities(benchmark::State& state) {
  Relation rel = MakeRelation(Chain4(), state.range(0), 3);
  const std::string top = Chain4().MaximalElements().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.ViewAt(top));
  }
  state.SetComplexityN(state.range(0));
}

void BM_BetaOnDiamond(benchmark::State& state, BeliefMode mode) {
  Relation rel = MakeRelation(Diamond(), 64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Believe(rel, "top", mode));
  }
}

BENCHMARK_CAPTURE(BM_BetaVsEntities, fir, BeliefMode::kFirm)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_BetaVsEntities, opt, BeliefMode::kOptimistic)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_BetaVsEntities, cau, BeliefMode::kCautious)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_BetaVsVersions, cau, BeliefMode::kCautious)
    ->DenseRange(1, 4, 1);
BENCHMARK(BM_SigmaViewVsEntities)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK_CAPTURE(BM_BetaOnDiamond, cau, BeliefMode::kCautious);
BENCHMARK_CAPTURE(BM_BetaOnDiamond, opt, BeliefMode::kOptimistic);

/// Machine-readable scaling records (same line format as the datalog
/// bench; see scripts/run_experiments.sh). Beta itself is
/// single-threaded, so every record carries threads = 1.
void EmitScalingJson() {
  const char* path = std::getenv("MULTILOG_SCALING_JSON");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  const std::string top = Chain4().MaximalElements().front();
  const int kRepeats = 3;
  for (size_t entities : {256u, 1024u}) {
    Relation rel = MakeRelation(Chain4(), entities, 3);
    for (auto [name, mode] :
         {std::pair{"beta_firm", BeliefMode::kFirm},
          std::pair{"beta_optimistic", BeliefMode::kOptimistic},
          std::pair{"beta_cautious", BeliefMode::kCautious}}) {
      double best_ms = 0;
      for (int rep = 0; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(Believe(rel, top, mode));
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      out << "{\"bench\": \"" << name << "\", \"size\": " << entities
          << ", \"threads\": 1, \"wall_ms\": " << best_ms << "}\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E17: beta scaling (synthetic relations; see EXPERIMENTS.md for the "
      "expected shapes)\n\n");
  EmitScalingJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
