// Experiment E18: the CORAL-substitute Datalog engine itself - the
// substrate the reduction runs on. Transitive closure on chain and
// random graphs, semi-naive vs naive (the ablation the strategy option
// exists for), and tabled top-down point queries vs whole-model
// bottom-up.
//
// Expected shape: semi-naive beats naive by roughly the number of
// fixpoint rounds; top-down wins on selective point queries, bottom-up
// on all-answers queries.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/eval.h"
#include "datalog/magic.h"
#include "datalog/parser.h"
#include "datalog/topdown.h"

namespace {

using namespace multilog::datalog;

Program ChainGraph(int n) {
  Program p;
  for (int i = 0; i + 1 < n; ++i) {
    p.AddFact(Atom("edge", {Term::Sym("n" + std::to_string(i)),
                            Term::Sym("n" + std::to_string(i + 1))}));
  }
  auto parsed = ParseDatalog(
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
  p.Append(parsed->program);
  return p;
}

Program RandomGraph(int nodes, int edges, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  Program p;
  for (int i = 0; i < edges; ++i) {
    p.AddFact(Atom("edge", {Term::Sym("n" + std::to_string(pick(rng))),
                            Term::Sym("n" + std::to_string(pick(rng)))}));
  }
  auto parsed = ParseDatalog(
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
  p.Append(parsed->program);
  return p;
}

void BM_TcChain(benchmark::State& state, EvalOptions::Strategy strategy) {
  Program p = ChainGraph(static_cast<int>(state.range(0)));
  EvalOptions options;
  options.strategy = strategy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p, options));
  }
  state.SetComplexityN(state.range(0));
}

void BM_TcRandom(benchmark::State& state, EvalOptions::Strategy strategy) {
  Program p = RandomGraph(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)) * 2, 7);
  EvalOptions options;
  options.strategy = strategy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p, options));
  }
}

void BM_TcRandomThreads(benchmark::State& state) {
  // Thread-scaling variant: same workload, num_threads from the second
  // range argument. Results are identical at every thread count (the
  // parallel merge is deterministic); only the wall clock moves.
  Program p = RandomGraph(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)) * 4, 7);
  EvalOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p, options));
  }
}

void BM_PointQueryTopDown(benchmark::State& state) {
  Program p = ChainGraph(static_cast<int>(state.range(0)));
  auto goal = ParseGoal("path(n0, Y)");
  for (auto _ : state) {
    state.PauseTiming();
    TopDownEngine engine(p);  // cold tables each iteration
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Solve(*goal));
  }
}

void BM_PointQueryBottomUp(benchmark::State& state) {
  Program p = ChainGraph(static_cast<int>(state.range(0)));
  auto goal = ParseGoal("path(n0, Y)");
  for (auto _ : state) {
    auto model = Evaluate(p);
    benchmark::DoNotOptimize(QueryModel(*model, *goal));
  }
}

void BM_PointQueryMagic(benchmark::State& state) {
  // CORAL's magic-sets rewriting: goal-directed bottom-up.
  Program p = ChainGraph(static_cast<int>(state.range(0)));
  auto goal = ParseGoal("path(n0, Y)");
  const Atom& query = (*goal)[0].atom();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MagicSolve(p, query));
  }
}

void BM_JoinReordering(benchmark::State& state, bool reorder) {
  // A deliberately badly-ordered body: the selective literal is last.
  //   r(X, Y) :- big(X), wide(Y), tiny(a, X, Y).
  const int n = static_cast<int>(state.range(0));
  Program p;
  for (int i = 0; i < n; ++i) {
    p.AddFact(Atom("big", {Term::Sym("b" + std::to_string(i))}));
    p.AddFact(Atom("wide", {Term::Sym("w" + std::to_string(i))}));
  }
  p.AddFact(Atom("tiny", {Term::Sym("a"), Term::Sym("b1"),
                          Term::Sym("w1")}));
  auto parsed =
      ParseDatalog("r(X, Y) :- big(X), wide(Y), tiny(a, X, Y).");
  p.Append(parsed->program);

  EvalOptions options;
  options.reorder_body = reorder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p, options));
  }
}

void BM_StratifiedNegation(benchmark::State& state) {
  Program p = RandomGraph(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(0)) * 2, 11);
  for (int i = 0; i < state.range(0); ++i) {
    p.AddFact(Atom("node", {Term::Sym("n" + std::to_string(i))}));
  }
  auto parsed = ParseDatalog(
      "island(X, Y) :- node(X), node(Y), not path(X, Y).");
  p.Append(parsed->program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p));
  }
}

BENCHMARK_CAPTURE(BM_TcChain, seminaive, EvalOptions::Strategy::kSeminaive)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK_CAPTURE(BM_TcChain, naive, EvalOptions::Strategy::kNaive)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK_CAPTURE(BM_TcRandom, seminaive, EvalOptions::Strategy::kSeminaive)
    ->RangeMultiplier(2)
    ->Range(32, 256);
BENCHMARK_CAPTURE(BM_TcRandom, naive, EvalOptions::Strategy::kNaive)
    ->RangeMultiplier(2)
    ->Range(32, 256);
BENCHMARK(BM_TcRandomThreads)
    ->ArgsProduct({{256, 512}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointQueryTopDown)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_PointQueryBottomUp)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_PointQueryMagic)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_StratifiedNegation)->RangeMultiplier(2)->Range(16, 64);
BENCHMARK_CAPTURE(BM_JoinReordering, on, true)
    ->RangeMultiplier(4)
    ->Range(16, 256);
BENCHMARK_CAPTURE(BM_JoinReordering, off, false)
    ->RangeMultiplier(4)
    ->Range(16, 256);

// Interning ablation: the primitive operation the Symbol refactor
// targets, in isolation. Build an index over n two-column facts and
// probe it n times - once keyed by the rendered "pred(a, b)" strings
// (the pre-interning representation) and once by interned Term values
// with integer hashing. The gap bounds how much of the engine speedup
// is attributable to key representation alone.
void BM_InternAblationStringKey(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("n" + std::to_string(i));
  for (auto _ : state) {
    std::unordered_map<std::string, std::vector<size_t>> index;
    for (int i = 0; i < n; ++i) {
      index["edge(" + names[static_cast<size_t>(i)] + ", " +
            names[static_cast<size_t>((i * 7 + 1) % n)] + ")"]
          .push_back(static_cast<size_t>(i));
    }
    size_t hits = 0;
    for (int i = 0; i < n; ++i) {
      auto it = index.find("edge(" + names[static_cast<size_t>(i)] + ", " +
                           names[static_cast<size_t>((i * 7 + 1) % n)] +
                           ")");
      if (it != index.end()) hits += it->second.size();
    }
    benchmark::DoNotOptimize(hits);
  }
}

void BM_InternAblationSymbolKey(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Term> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(Term::Fn(
        "edge", {Term::Sym("n" + std::to_string(i)),
                 Term::Sym("n" + std::to_string((i * 7 + 1) % n))}));
  }
  for (auto _ : state) {
    std::unordered_map<Term, std::vector<size_t>, TermHash> index;
    for (int i = 0; i < n; ++i) {
      index[keys[static_cast<size_t>(i)]].push_back(static_cast<size_t>(i));
    }
    size_t hits = 0;
    for (int i = 0; i < n; ++i) {
      auto it = index.find(keys[static_cast<size_t>(i)]);
      if (it != index.end()) hits += it->second.size();
    }
    benchmark::DoNotOptimize(hits);
  }
}

BENCHMARK(BM_InternAblationStringKey)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_InternAblationSymbolKey)->RangeMultiplier(4)->Range(256, 16384);

/// Machine-readable scaling records. When MULTILOG_SCALING_JSON names a
/// file, appends one JSON object per line:
///   {"bench": "...", "size": N, "threads": T, "wall_ms": W}
/// scripts/run_experiments.sh collects the lines from every bench
/// binary into BENCH_scaling.json.
void EmitScalingJson() {
  const char* path = std::getenv("MULTILOG_SCALING_JSON");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  const int kRepeats = 3;
  for (int nodes : {256, 512}) {
    Program p = RandomGraph(nodes, nodes * 4, 7);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      EvalOptions options;
      options.num_threads = threads;
      double best_ms = 0;
      for (int rep = 0; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        auto model = Evaluate(p, options);
        const auto stop = std::chrono::steady_clock::now();
        if (!model.ok()) std::abort();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep == 0 || ms < best_ms) best_ms = ms;
      }
      out << "{\"bench\": \"tc_random\", \"size\": " << nodes
          << ", \"threads\": " << threads << ", \"wall_ms\": " << best_ms
          << "}\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E18: Datalog substrate scaling\n\n");
  EmitScalingJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
