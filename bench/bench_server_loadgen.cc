// Load generator for multilogd: starts servers in-process over the
// paper's D1 database and drives three experiments through real
// sockets against the epoll serving loop:
//
//  1. mixed sweep - concurrent blocking clients at mixed clearances and
//     execution modes; every response byte-compared against a direct
//     single-threaded engine query, plus a deadline probe.
//  2. soak - `--idle` connections (default 10000) held open and silent
//     while `--hot` pipelined clients (default 100) each keep `--burst`
//     tagged queries in flight; reports soak QPS and p99 with the idle
//     herd parked in the epoll set, and byte-checks every hot answer.
//  3. write throughput - `--writers` concurrent committers (default 8)
//     against three durable servers: group commit with pipelined
//     committers (the new stack), fsync-per-write with pipelining
//     (isolates the group-commit contribution), and fsync-per-write
//     with blocking round-trips (the seed's commit path - its protocol
//     had no request ids, so seed clients could not pipeline writes).
//     Reports all three rates and the grouped-vs-seed speedup;
//     `--min-write-speedup X` turns that speedup into a pass/fail gate.
//
// The run fails (non-zero exit) if a single answer byte differs, the
// deadline probe breaks, a write is lost, or the speedup gate misses.
//
//   $ bench_server_loadgen [--clients N] [--queries N] [--workers N]
//                          [--idle N] [--hot N] [--burst N] [--rounds N]
//                          [--writers N] [--writes N]
//                          [--min-write-speedup X] [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_SERVER_JSON, or to BENCH_server.json (in that order).
// scripts/run_experiments.sh picks it up as the serving experiment.

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage.h"

namespace {

using namespace multilog;
using server::Client;
using server::Json;

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";
constexpr const char* kLevels[] = {"u", "c", "s"};
constexpr const char* kModes[] = {"operational", "reduced", "check_both"};

std::string AnswerBytes(const Json& response) {
  const Json* answers = response.Find("answers");
  return answers == nullptr ? "<missing>" : answers->Serialize();
}

double WallMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Raises RLIMIT_NOFILE to its hard cap and returns how many idle
/// sessions fit: both socket ends live in this process (two fds each),
/// and the hot set + server plumbing need headroom.
size_t ClampIdleSessions(size_t requested, size_t hot) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return requested;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  const size_t overhead = 2 * hot + 512;
  if (lim.rlim_cur != RLIM_INFINITY &&
      static_cast<size_t>(lim.rlim_cur) > overhead) {
    const size_t fit = (static_cast<size_t>(lim.rlim_cur) - overhead) / 2;
    if (fit < requested) {
      std::fprintf(stderr,
                   "note: RLIMIT_NOFILE=%llu clamps idle sessions "
                   "%zu -> %zu\n",
                   static_cast<unsigned long long>(lim.rlim_cur), requested,
                   fit);
      return fit;
    }
  }
  return requested;
}

constexpr size_t kWriteDepth = 8;  // pipelined asserts per writer

struct WriteRunResult {
  bool ok = false;
  double writes_per_sec = 0;
  uint64_t group_syncs = 0;
};

/// Durable write throughput: `writers` concurrent clients each commit
/// `writes` distinct facts against a fresh durable server whose engine
/// has group commit on or off, keeping `depth` asserts in flight per
/// writer. The seed baseline is (group_commit=false, depth=1): the
/// thread-per-connection seed fsynced every write under the db lock
/// and its protocol had no request ids, so a seed client could only
/// commit in blocking round-trips. Returns the aggregate rate.
WriteRunResult RunWritePhase(bool group_commit, size_t writers,
                             size_t writes, size_t workers, size_t depth) {
  WriteRunResult result;
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("multilog_loadgen_" + std::string(group_commit ? "grouped" : "solo") +
       "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  Result<storage::Storage> st = storage::Storage::Open(dir, mls::D1Source());
  if (!st.ok()) {
    std::fprintf(stderr, "storage: %s\n", st.status().ToString().c_str());
    return result;
  }
  ml::EngineOptions eopt;
  eopt.group_commit = group_commit;
  // This phase measures the *commit* path (WAL append + fsync
  // schedule), so incremental view maintenance - identical work on
  // both sides - is off to keep the fsync cost visible.
  eopt.incremental = false;
  Result<ml::Engine> engine = ml::Engine::FromStorage(&*st, eopt);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return result;
  }
  // Enough workers that every writer's commit can be in flight at once
  // AND appends keep landing while a full cohort of commits sits in
  // SyncTo (one leader in fdatasync, the rest waiting on it) - group
  // commit only pays when the next batch builds during this one's sync.
  server::ServerOptions sopt;
  sopt.num_workers = std::max(workers, 2 * writers);
  sopt.max_in_flight = writers * kWriteDepth + 8;
  server::Server srv(&*engine, sopt);
  if (Status s = srv.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return result;
  }

  std::atomic<size_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Result<Client> client = Client::Connect(srv.port());
      if (!client.ok() || !client->Hello("s").ok()) {
        failed.fetch_add(writes);
        return;
      }
      // Keep `depth` asserts in flight; depth 1 degenerates to the
      // seed's lock-step round-trips.
      size_t sent = 0, done = 0;
      while (done < writes) {
        while (sent < writes && sent - done < depth) {
          const std::string entity =
              "w" + std::to_string(w) + "x" + std::to_string(sent);
          if (!client
                   ->SendAssert(static_cast<int64_t>(sent),
                                "s[p(" + entity + " : a -s-> " + entity +
                                    ")].")
                   .ok()) {
            failed.fetch_add(1);
          }
          ++sent;
        }
        Result<Json> r = client->ReadResponse();
        if (!r.ok() || !r->GetBool("ok", false)) failed.fetch_add(1);
        ++done;
      }
      client->Bye();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = WallMs(start);

  {
    Result<Client> probe = Client::Connect(srv.port());
    if (probe.ok()) {
      Result<Json> stats = probe->Stats();
      if (stats.ok()) {
        const Json* storage_stats = stats->Find("stats")->Find("storage");
        if (storage_stats != nullptr) {
          result.group_syncs =
              static_cast<uint64_t>(storage_stats->GetInt("group_syncs"));
        }
      }
    }
  }
  srv.Stop();
  std::filesystem::remove_all(dir);

  result.ok = failed.load() == 0;
  result.writes_per_sec =
      static_cast<double>(writers * writes) / (wall_ms / 1000.0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  size_t clients = 8;
  size_t queries_per_client = 200;
  size_t idle_sessions = 10000;
  size_t hot_clients = 100;
  size_t burst = 16;    // pipelined queries in flight per hot client
  size_t rounds = 5;    // bursts each hot client fires
  size_t writers = 8;
  size_t writes_per_writer = 64;
  double min_write_speedup = 0;  // 0 = report only, no gate
  server::ServerOptions options;
  options.num_workers = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--clients") {
      clients = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queries") {
      queries_per_client = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--workers") {
      options.num_workers = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--idle") {
      idle_sessions = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--hot") {
      hot_clients = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--burst") {
      burst = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--rounds") {
      rounds = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--writers") {
      writers = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--writes") {
      writes_per_writer = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--min-write-speedup") {
      min_write_speedup = std::atof(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--clients N] [--queries N] [--workers N] [--idle N] "
          "[--hot N] [--burst N] [--rounds N] [--writers N] [--writes N] "
          "[--min-write-speedup X] [--json PATH]\n",
          argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_SERVER_JSON");
    json_path = env != nullptr ? env : "BENCH_server.json";
  }

  Result<ml::Engine> engine = ml::Engine::FromSource(mls::D1Source());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Ground truth, computed once, single-threaded, no server involved.
  Result<ml::Engine> reference = ml::Engine::FromSource(mls::D1Source());
  if (!reference.ok()) return 1;
  std::map<std::string, std::string> expected;
  for (const char* level : kLevels) {
    for (size_t m = 0; m < 3; ++m) {
      Result<ml::QueryResult> r =
          reference->QuerySource(kGoal, level, static_cast<ml::ExecMode>(m));
      if (!r.ok()) {
        std::fprintf(stderr, "reference: %s\n", r.status().ToString().c_str());
        return 1;
      }
      Json answers = Json::Array();
      for (const auto& a : r->answers) answers.Push(Json::Str(a.ToString()));
      expected[std::string(level) + "/" + kModes[m]] = answers.Serialize();
    }
  }

  // ---- Phase 1: mixed blocking sweep -------------------------------
  server::Server srv(&*engine, options);
  if (Status s = srv.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> deadline_probe_failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::string level = kLevels[t % 3];
      Result<Client> client = Client::Connect(srv.port());
      if (!client.ok() || !client->Hello(level).ok()) {
        errors.fetch_add(1);
        return;
      }
      for (size_t q = 0; q < queries_per_client; ++q) {
        const char* mode = kModes[(t + q) % 3];
        Result<Json> r = client->Query(kGoal, -1, mode);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        if (AnswerBytes(*r) != expected[level + "/" + mode]) {
          mismatches.fetch_add(1);
        }
      }
      // Deadline probe: an expired deadline must return a structured
      // kDeadlineExceeded and leave the connection fully usable.
      Result<Json> dead = client->Query(kGoal, /*deadline_ms=*/0);
      if (dead.ok() || !dead.status().IsDeadlineExceeded()) {
        deadline_probe_failures.fetch_add(1);
      }
      // Mode defaults to the session's (reduced) when not overridden.
      Result<Json> after = client->Query(kGoal, /*deadline_ms=*/60000);
      if (!after.ok() || AnswerBytes(*after) != expected[level + "/reduced"]) {
        deadline_probe_failures.fetch_add(1);
      }
      client->Bye();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = WallMs(start);

  // Percentiles come from the server's own histogram via STATS.
  double p50 = 0, p95 = 0, p99 = 0, mean = 0;
  uint64_t recorded = 0;
  {
    Result<Client> probe = Client::Connect(srv.port());
    if (probe.ok()) {
      Result<Json> stats = probe->Stats();
      if (stats.ok()) {
        const Json* lat = stats->Find("stats")->Find("queries")->Find(
            "latency");
        if (lat != nullptr) {
          recorded = static_cast<uint64_t>(lat->GetInt("count"));
          mean = lat->Find("mean_ms")->number_value();
          p50 = lat->Find("p50_ms")->number_value();
          p95 = lat->Find("p95_ms")->number_value();
          p99 = lat->Find("p99_ms")->number_value();
        }
      }
    }
  }
  srv.Stop();

  const size_t total = clients * queries_per_client;
  const double qps = total / (wall_ms / 1000.0);
  std::printf(
      "server_loadgen: %zu clients x %zu queries, %zu workers\n"
      "  wall %.1f ms, %.0f qps, latency mean %.3f ms "
      "p50 %.3f p95 %.3f p99 %.3f (n=%llu)\n",
      clients, queries_per_client, options.num_workers, wall_ms, qps, mean,
      p50, p95, p99, static_cast<unsigned long long>(recorded));

  // ---- Phase 2: soak - idle herd + hot pipelined set ---------------
  idle_sessions = ClampIdleSessions(idle_sessions, hot_clients);
  server::ServerOptions soak_options = options;
  soak_options.max_connections = idle_sessions + hot_clients + 8;
  soak_options.max_in_flight = hot_clients * burst + 8;
  server::Server soak_srv(&*engine, soak_options);
  if (Status s = soak_srv.Start(); !s.ok()) {
    std::fprintf(stderr, "soak start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<Client> idle;
  idle.reserve(idle_sessions);
  for (size_t i = 0; i < idle_sessions; ++i) {
    Result<Client> c = Client::Connect(soak_srv.port());
    if (!c.ok()) {
      std::fprintf(stderr, "idle connect %zu: %s\n", i,
                   c.status().ToString().c_str());
      return 1;
    }
    idle.push_back(std::move(c).value());
  }

  std::atomic<size_t> soak_errors{0};
  std::atomic<size_t> soak_mismatches{0};
  const std::string& hot_expected = expected["s/reduced"];
  const auto soak_start = std::chrono::steady_clock::now();
  std::vector<std::thread> hot;
  hot.reserve(hot_clients);
  for (size_t h = 0; h < hot_clients; ++h) {
    hot.emplace_back([&, h] {
      Result<Client> client = Client::Connect(soak_srv.port());
      if (!client.ok() || !client->Hello("s").ok()) {
        soak_errors.fetch_add(rounds * burst);
        return;
      }
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < burst; ++i) {
          if (!client->SendQuery(static_cast<int64_t>(h * 100000 +
                                                      round * 1000 + i),
                                 kGoal)
                   .ok()) {
            soak_errors.fetch_add(1);
          }
        }
        std::set<int64_t> seen;
        for (size_t i = 0; i < burst; ++i) {
          Result<Json> r = client->ReadResponse();
          if (!r.ok() || !r->GetBool("ok", false)) {
            soak_errors.fetch_add(1);
            continue;
          }
          const Json* id = r->Find("id");
          if (id == nullptr || !seen.insert(id->int_value()).second ||
              AnswerBytes(*r) != hot_expected) {
            soak_mismatches.fetch_add(1);
          }
        }
      }
      client->Bye();
    });
  }
  for (std::thread& t : hot) t.join();
  const double soak_wall_ms = WallMs(soak_start);

  double soak_p99 = 0;
  {
    Result<Client> probe = Client::Connect(soak_srv.port());
    if (probe.ok()) {
      Result<Json> stats = probe->Stats();
      if (stats.ok()) {
        const Json* lat =
            stats->Find("stats")->Find("queries")->Find("latency");
        if (lat != nullptr) soak_p99 = lat->Find("p99_ms")->number_value();
      }
    }
  }
  idle.clear();
  soak_srv.Stop();

  const size_t soak_total = hot_clients * burst * rounds;
  const double soak_qps = soak_total / (soak_wall_ms / 1000.0);
  std::printf(
      "  soak: %zu idle + %zu hot (burst %zu x %zu rounds): "
      "%.0f qps, p99 %.3f ms\n",
      idle_sessions, hot_clients, burst, rounds, soak_qps, soak_p99);

  // ---- Phase 3: write throughput vs the seed commit path -----------
  // New stack: group commit + pipelined committers. Seed baseline:
  // fsync-per-write, blocking round-trips (the seed protocol had no
  // request ids, so its clients could not pipeline writes). A third
  // run isolates the group-commit contribution: ungrouped but with the
  // new pipelining, so the delta to `seed` is pipelining alone and the
  // delta from it to `grouped` is the shared-fsync schedule.
  const WriteRunResult grouped = RunWritePhase(
      true, writers, writes_per_writer, options.num_workers, kWriteDepth);
  const WriteRunResult ungrouped_pipelined = RunWritePhase(
      false, writers, writes_per_writer, options.num_workers, kWriteDepth);
  const WriteRunResult seed = RunWritePhase(
      false, writers, writes_per_writer, options.num_workers, /*depth=*/1);
  const double speedup =
      seed.writes_per_sec > 0 ? grouped.writes_per_sec / seed.writes_per_sec
                              : 0;
  std::printf(
      "  writes (%zu writers x %zu): grouped %.0f/s (%llu syncs), "
      "ungrouped-pipelined %.0f/s, seed (blocking, fsync-per-write) "
      "%.0f/s, speedup vs seed %.2fx\n",
      writers, writes_per_writer, grouped.writes_per_sec,
      static_cast<unsigned long long>(grouped.group_syncs),
      ungrouped_pipelined.writes_per_sec, seed.writes_per_sec, speedup);

  const bool byte_identical = mismatches.load() == 0 && errors.load() == 0 &&
                              soak_mismatches.load() == 0 &&
                              soak_errors.load() == 0;
  const bool deadline_ok = deadline_probe_failures.load() == 0;
  const bool writes_ok = grouped.ok && ungrouped_pipelined.ok && seed.ok;
  const bool speedup_ok =
      min_write_speedup <= 0 || speedup >= min_write_speedup;
  std::printf(
      "  byte-identical answers: %s, deadline probe: %s, writes: %s%s\n",
      byte_identical ? "yes" : "NO", deadline_ok ? "ok" : "FAILED",
      writes_ok ? "ok" : "FAILED",
      speedup_ok ? "" : ", SPEEDUP GATE MISSED");

  Json record = Json::Object();
  record.Set("bench", Json::Str("server_loadgen"));
  record.Set("clients", Json::Int(static_cast<int64_t>(clients)));
  record.Set("queries", Json::Int(static_cast<int64_t>(total)));
  record.Set("workers", Json::Int(static_cast<int64_t>(options.num_workers)));
  record.Set("wall_ms", Json::Double(wall_ms));
  record.Set("qps", Json::Double(qps));
  record.Set("mean_ms", Json::Double(mean));
  record.Set("p50_ms", Json::Double(p50));
  record.Set("p95_ms", Json::Double(p95));
  record.Set("p99_ms", Json::Double(p99));
  record.Set("byte_identical", Json::Bool(byte_identical));
  record.Set("deadline_ok", Json::Bool(deadline_ok));
  Json soak_json = Json::Object();
  soak_json.Set("idle_sessions",
                Json::Int(static_cast<int64_t>(idle_sessions)));
  soak_json.Set("hot_clients", Json::Int(static_cast<int64_t>(hot_clients)));
  soak_json.Set("burst", Json::Int(static_cast<int64_t>(burst)));
  soak_json.Set("queries", Json::Int(static_cast<int64_t>(soak_total)));
  soak_json.Set("wall_ms", Json::Double(soak_wall_ms));
  soak_json.Set("qps", Json::Double(soak_qps));
  soak_json.Set("p99_ms", Json::Double(soak_p99));
  record.Set("soak", std::move(soak_json));
  Json writes_json = Json::Object();
  writes_json.Set("writers", Json::Int(static_cast<int64_t>(writers)));
  writes_json.Set("writes_per_writer",
                  Json::Int(static_cast<int64_t>(writes_per_writer)));
  writes_json.Set("pipeline_depth",
                  Json::Int(static_cast<int64_t>(kWriteDepth)));
  writes_json.Set("grouped_writes_per_sec",
                  Json::Double(grouped.writes_per_sec));
  writes_json.Set("ungrouped_pipelined_writes_per_sec",
                  Json::Double(ungrouped_pipelined.writes_per_sec));
  writes_json.Set("seed_writes_per_sec", Json::Double(seed.writes_per_sec));
  writes_json.Set("grouped_syncs",
                  Json::Int(static_cast<int64_t>(grouped.group_syncs)));
  writes_json.Set("speedup_vs_seed", Json::Double(speedup));
  record.Set("writes", std::move(writes_json));
  std::ofstream out(json_path);
  if (out) {
    out << record.Serialize() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return byte_identical && deadline_ok && writes_ok && speedup_ok ? 0 : 1;
}
