// Load generator for multilogd: starts a server in-process over the
// paper's D1 database, hammers it from concurrent client threads at
// mixed clearances and execution modes, and reports QPS plus latency
// percentiles from the server's own STATS surface.
//
// Correctness rides along with the load: every response is
// byte-compared against a direct single-threaded engine query, and a
// deadline probe checks that kDeadlineExceeded comes back structured
// without killing the connection. The run fails (non-zero exit) if a
// single byte differs.
//
//   $ bench_server_loadgen [--clients N] [--queries N] [--workers N]
//                          [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_SERVER_JSON, or to BENCH_server.json (in that order).
// scripts/run_experiments.sh picks it up as the serving experiment.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace multilog;
using server::Client;
using server::Json;

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";
constexpr const char* kLevels[] = {"u", "c", "s"};
constexpr const char* kModes[] = {"operational", "reduced", "check_both"};

std::string AnswerBytes(const Json& response) {
  const Json* answers = response.Find("answers");
  return answers == nullptr ? "<missing>" : answers->Serialize();
}

}  // namespace

int main(int argc, char** argv) {
  size_t clients = 8;
  size_t queries_per_client = 200;
  server::ServerOptions options;
  options.num_workers = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--clients") {
      clients = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queries") {
      queries_per_client = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--workers") {
      options.num_workers = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients N] [--queries N] [--workers N] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_SERVER_JSON");
    json_path = env != nullptr ? env : "BENCH_server.json";
  }

  Result<ml::Engine> engine = ml::Engine::FromSource(mls::D1Source());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  server::Server srv(&*engine, options);
  if (Status s = srv.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  // Ground truth, computed once, single-threaded, no server involved.
  Result<ml::Engine> reference = ml::Engine::FromSource(mls::D1Source());
  if (!reference.ok()) return 1;
  std::map<std::string, std::string> expected;
  for (const char* level : kLevels) {
    for (size_t m = 0; m < 3; ++m) {
      Result<ml::QueryResult> r =
          reference->QuerySource(kGoal, level, static_cast<ml::ExecMode>(m));
      if (!r.ok()) {
        std::fprintf(stderr, "reference: %s\n", r.status().ToString().c_str());
        return 1;
      }
      Json answers = Json::Array();
      for (const auto& a : r->answers) answers.Push(Json::Str(a.ToString()));
      expected[std::string(level) + "/" + kModes[m]] = answers.Serialize();
    }
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> deadline_probe_failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::string level = kLevels[t % 3];
      Result<Client> client = Client::Connect(srv.port());
      if (!client.ok() || !client->Hello(level).ok()) {
        errors.fetch_add(1);
        return;
      }
      for (size_t q = 0; q < queries_per_client; ++q) {
        const char* mode = kModes[(t + q) % 3];
        Result<Json> r = client->Query(kGoal, -1, mode);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        if (AnswerBytes(*r) != expected[level + "/" + mode]) {
          mismatches.fetch_add(1);
        }
      }
      // Deadline probe: an expired deadline must return a structured
      // kDeadlineExceeded and leave the connection fully usable.
      Result<Json> dead = client->Query(kGoal, /*deadline_ms=*/0);
      if (dead.ok() || !dead.status().IsDeadlineExceeded()) {
        deadline_probe_failures.fetch_add(1);
      }
      // Mode defaults to the session's (reduced) when not overridden.
      Result<Json> after = client->Query(kGoal, /*deadline_ms=*/60000);
      if (!after.ok() || AnswerBytes(*after) != expected[level + "/reduced"]) {
        deadline_probe_failures.fetch_add(1);
      }
      client->Bye();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  // Percentiles come from the server's own histogram via STATS.
  double p50 = 0, p95 = 0, p99 = 0, mean = 0;
  uint64_t recorded = 0;
  {
    Result<Client> probe = Client::Connect(srv.port());
    if (probe.ok()) {
      Result<Json> stats = probe->Stats();
      if (stats.ok()) {
        const Json* lat = stats->Find("stats")->Find("queries")->Find(
            "latency");
        if (lat != nullptr) {
          recorded = static_cast<uint64_t>(lat->GetInt("count"));
          mean = lat->Find("mean_ms")->number_value();
          p50 = lat->Find("p50_ms")->number_value();
          p95 = lat->Find("p95_ms")->number_value();
          p99 = lat->Find("p99_ms")->number_value();
        }
      }
    }
  }
  srv.Stop();

  const size_t total = clients * queries_per_client;
  const double qps = total / (wall_ms / 1000.0);
  const bool byte_identical = mismatches.load() == 0 && errors.load() == 0;
  const bool deadline_ok = deadline_probe_failures.load() == 0;
  std::printf(
      "server_loadgen: %zu clients x %zu queries, %zu workers\n"
      "  wall %.1f ms, %.0f qps, latency mean %.3f ms "
      "p50 %.3f p95 %.3f p99 %.3f (n=%llu)\n"
      "  byte-identical answers: %s, deadline probe: %s\n",
      clients, queries_per_client, options.num_workers, wall_ms, qps, mean,
      p50, p95, p99, static_cast<unsigned long long>(recorded),
      byte_identical ? "yes" : "NO", deadline_ok ? "ok" : "FAILED");

  Json record = Json::Object();
  record.Set("bench", Json::Str("server_loadgen"));
  record.Set("clients", Json::Int(static_cast<int64_t>(clients)));
  record.Set("queries", Json::Int(static_cast<int64_t>(total)));
  record.Set("workers", Json::Int(static_cast<int64_t>(options.num_workers)));
  record.Set("wall_ms", Json::Double(wall_ms));
  record.Set("qps", Json::Double(qps));
  record.Set("mean_ms", Json::Double(mean));
  record.Set("p50_ms", Json::Double(p50));
  record.Set("p95_ms", Json::Double(p95));
  record.Set("p99_ms", Json::Double(p99));
  record.Set("byte_identical", Json::Bool(byte_identical));
  record.Set("deadline_ok", Json::Bool(deadline_ok));
  std::ofstream out(json_path);
  if (out) {
    out << record.Serialize() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return byte_identical && deadline_ok ? 0 : 1;
}
