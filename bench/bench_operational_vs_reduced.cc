// Experiments E14/E19: Theorem 6.1 in the large, as an ablation - the
// operational (tabled top-down) proof system vs the CORAL-style
// reduction (level-specialized bottom-up), on synthetic MLS databases of
// growing size, answering the same belief queries. Every data point is
// first cross-checked for equal answers.
//
// Expected shape: the reduction amortizes - it computes the whole bel
// model once per level, so all-answers queries favour it; the
// operational prover is goal-directed, so selective queries (bound key)
// favour it. Exactly the classic bottom-up/top-down trade-off CORAL was
// built around.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "multilog/translate.h"

namespace {

using namespace multilog;
using namespace multilog::ml;

std::string SyntheticSource(size_t entities) {
  static lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  auto rel = mls::BuildSyntheticRelation(lat, entities, 3, /*seed=*/7);
  if (!rel.ok()) std::abort();
  auto db = EncodeRelation(*rel, "data");
  if (!db.ok()) std::abort();
  return db->ToString();
}

void CrossCheck(const std::string& src, const char* goal) {
  auto engine = Engine::FromSource(src);
  if (!engine.ok()) std::abort();
  auto r = engine->QuerySource(goal, "t", ExecMode::kCheckBoth);
  if (!r.ok()) {
    std::fprintf(stderr, "Theorem 6.1 cross-check failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
}

constexpr const char* kAllAnswers = "t[data(K : payload -C-> V)] << cau";
constexpr const char* kPointQuery =
    "t[data(entity0 : payload -C-> V)] << cau";

void BM_Operational(benchmark::State& state, const char* goal) {
  const std::string src = SyntheticSource(state.range(0));
  CrossCheck(src, goal);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = Engine::FromSource(src);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        engine->QuerySource(goal, "t", ExecMode::kOperational));
  }
}

void BM_Reduced(benchmark::State& state, const char* goal) {
  const std::string src = SyntheticSource(state.range(0));
  CrossCheck(src, goal);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = Engine::FromSource(src);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        engine->QuerySource(goal, "t", ExecMode::kReduced));
  }
}

void BM_ReducedWarm(benchmark::State& state, const char* goal) {
  // With the model already evaluated (the amortized regime).
  const std::string src = SyntheticSource(state.range(0));
  auto engine = Engine::FromSource(src);
  if (!engine.ok()) std::abort();
  (void)engine->ReducedModel("t");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->QuerySource(goal, "t", ExecMode::kReduced));
  }
}

BENCHMARK_CAPTURE(BM_Operational, all_answers, kAllAnswers)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_Reduced, all_answers, kAllAnswers)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_Operational, point_query, kPointQuery)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_Reduced, point_query, kPointQuery)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_ReducedWarm, point_query, kPointQuery)
    ->RangeMultiplier(2)
    ->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E14/E19: operational vs reduced semantics (each size cross-checked "
      "per Theorem 6.1)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
