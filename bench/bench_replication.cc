// Replication benchmark: one durable primary, N read replicas tailing
// it over real loopback sockets, and a steady write stream. Records
// replication lag (commit on the primary -> applied on every replica)
// as p50/p99, then replica read throughput from concurrent clients
// against a read-only replica server.
//
// Correctness rides along with the load: after the stream drains, every
// replica's canonical dump must be byte-identical to the primary's (one
// dump covers every clearance of the multilevel store), and the run
// enforces the acceptance gate p99 lag < --max-p99-lag-ms (250 by
// default). The run fails (non-zero exit) on any divergence, any
// reconnect, or a blown gate.
//
//   $ bench_replication [--writes N] [--replicas N] [--clients N]
//                       [--queries N] [--max-p99-lag-ms MS]
//                       [--dir PATH] [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_REPLICATION_JSON, or to BENCH_replication.json (in that
// order). scripts/run_experiments.sh picks it up as the replication
// experiment (EXPERIMENTS.md section J).

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "multilog/engine.h"
#include "replication/replicator.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage.h"

namespace {

using namespace multilog;
using server::Client;
using server::Json;

constexpr char kBaseSource[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

constexpr const char* kLevels[] = {"u", "a", "b", "ts"};

std::string BenchFact(size_t i) {
  const std::string level = kLevels[i % 4];
  const std::string key = "k" + std::to_string(i);
  return level + "[item(" + key + " : id -" + level + "-> " + key + ", val -" +
         level + "-> v" + std::to_string(i) + ")].";
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

/// A replica: its own durable store, engine, and replicator.
struct Replica {
  std::optional<storage::Storage> storage;
  std::optional<ml::Engine> engine;
  std::unique_ptr<replication::Replicator> replicator;
};

}  // namespace

int main(int argc, char** argv) {
  size_t writes = 400;
  size_t replicas = 2;
  size_t clients = 4;
  size_t queries_per_client = 200;
  double max_p99_lag_ms = 250;
  std::string dir;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--writes") {
      writes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--replicas") {
      replicas = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--clients") {
      clients = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queries") {
      queries_per_client = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--max-p99-lag-ms") {
      max_p99_lag_ms = std::atof(next());
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--writes N] [--replicas N] [--clients N] "
                   "[--queries N] [--max-p99-lag-ms MS] [--dir PATH] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (dir.empty()) {
    dir = "/tmp/multilog_bench_replication_" + std::to_string(::getpid());
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_REPLICATION_JSON");
    json_path = env != nullptr ? env : "BENCH_replication.json";
  }

  // Every run starts from scratch: a stale primary WAL would make the
  // first writes duplicate no-ops and zero out the lag samples.
  // (Storage::Open creates each data dir, but only one level deep.)
  ::mkdir(dir.c_str(), 0755);
  auto scrub = [&](const std::string& d) {
    std::remove((d + "/wal.log").c_str());
    std::remove((d + "/snapshot.mls").c_str());
  };
  scrub(dir + "/primary");
  for (size_t r = 0; r < replicas; ++r) {
    scrub(dir + "/replica" + std::to_string(r));
  }

  // --- Primary: durable engine + server. -----------------------------
  Result<storage::Storage> primary_storage =
      storage::Storage::Open(dir + "/primary", kBaseSource);
  if (!primary_storage.ok()) {
    std::fprintf(stderr, "primary open: %s\n",
                 primary_storage.status().ToString().c_str());
    return 1;
  }
  Result<ml::Engine> primary = ml::Engine::FromStorage(&*primary_storage);
  if (!primary.ok()) {
    std::fprintf(stderr, "primary engine: %s\n",
                 primary.status().ToString().c_str());
    return 1;
  }
  server::ServerOptions primary_options;
  primary_options.port = 0;
  server::Server primary_server(&*primary, primary_options);
  if (Status s = primary_server.Start(); !s.ok()) {
    std::fprintf(stderr, "primary start: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Replicas: durable engines tailing the primary. ----------------
  std::vector<std::unique_ptr<Replica>> fleet;
  for (size_t r = 0; r < replicas; ++r) {
    auto replica = std::make_unique<Replica>();
    Result<storage::Storage> st =
        storage::Storage::Open(dir + "/replica" + std::to_string(r),
                               kBaseSource);
    if (!st.ok()) {
      std::fprintf(stderr, "replica %zu open: %s\n", r,
                   st.status().ToString().c_str());
      return 1;
    }
    replica->storage.emplace(std::move(st).value());
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*replica->storage);
    if (!engine.ok()) {
      std::fprintf(stderr, "replica %zu engine: %s\n", r,
                   engine.status().ToString().c_str());
      return 1;
    }
    replica->engine.emplace(std::move(engine).value());
    replication::Replicator::Options options;
    options.port = primary_server.port();
    options.backoff_initial_ms = 10;
    replica->replicator = std::make_unique<replication::Replicator>(
        &*replica->engine, options);
    replica->replicator->Start();
    fleet.push_back(std::move(replica));
  }

  // --- Lag phase: a steady write stream; per write, the time from the
  // primary's commit until EVERY replica has applied it. --------------
  std::vector<double> lag_ms;
  lag_ms.reserve(writes);
  const auto stream_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < writes; ++i) {
    Result<ml::WriteResult> w = primary->Assert(BenchFact(i), kLevels[i % 4]);
    if (!w.ok()) {
      std::fprintf(stderr, "assert %zu: %s\n", i,
                   w.status().ToString().c_str());
      return 1;
    }
    const auto committed = std::chrono::steady_clock::now();
    const auto deadline = committed + std::chrono::seconds(30);
    for (const auto& replica : fleet) {
      while (replica->engine->AppliedSeqno() < w->seqno) {
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "replica stalled at write %zu\n", i);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
    lag_ms.push_back(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - committed)
                         .count());
  }
  const double stream_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - stream_start)
                               .count();

  std::sort(lag_ms.begin(), lag_ms.end());
  const double lag_p50 = Percentile(lag_ms, 50);
  const double lag_p99 = Percentile(lag_ms, 99);

  // --- Byte identity: every replica's dump equals the primary's. -----
  uint64_t primary_seqno = 0;
  const std::string want = primary->DumpSource(&primary_seqno);
  bool byte_identical = true;
  uint64_t reconnects = 0;
  for (size_t r = 0; r < fleet.size(); ++r) {
    uint64_t replica_seqno = 0;
    const std::string got = fleet[r]->engine->DumpSource(&replica_seqno);
    if (got != want || replica_seqno != primary_seqno) {
      std::fprintf(stderr, "replica %zu diverged at seqno %llu\n", r,
                   static_cast<unsigned long long>(replica_seqno));
      byte_identical = false;
    }
    reconnects += fleet[r]->replicator->GetStats().reconnects;
  }

  // --- Read phase: concurrent clients against a read-only replica
  // server, answers byte-compared against the primary engine. ---------
  server::ServerOptions replica_options;
  replica_options.port = 0;
  replica_options.read_only = true;
  server::Server replica_server(&*fleet[0]->engine, replica_options);
  replica_server.SetReplicator(fleet[0]->replicator.get());
  if (Status s = replica_server.Start(); !s.ok()) {
    std::fprintf(stderr, "replica server start: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string read_goal = "?- ts[item(K : id -ts-> K)].";
  std::string expected_answers;
  {
    Result<ml::QueryResult> ref =
        primary->QuerySource(read_goal, "ts", ml::ExecMode::kReduced);
    if (!ref.ok()) {
      std::fprintf(stderr, "reference: %s\n", ref.status().ToString().c_str());
      return 1;
    }
    Json answers = Json::Array();
    for (const auto& a : ref->answers) answers.Push(Json::Str(a.ToString()));
    expected_answers = answers.Serialize();
  }
  std::atomic<size_t> read_errors{0};
  const auto read_start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(clients);
  for (size_t t = 0; t < clients; ++t) {
    readers.emplace_back([&] {
      Result<Client> client = Client::Connect(replica_server.port());
      if (!client.ok() || !client->Hello("ts").ok()) {
        read_errors.fetch_add(1);
        return;
      }
      for (size_t q = 0; q < queries_per_client; ++q) {
        Result<Json> r = client->Query(read_goal);
        const Json* answers = r.ok() ? r->Find("answers") : nullptr;
        if (answers == nullptr || answers->Serialize() != expected_answers) {
          read_errors.fetch_add(1);
        }
      }
      client->Bye();
    });
  }
  for (std::thread& t : readers) t.join();
  const double read_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - read_start)
                             .count();
  const double replica_qps =
      static_cast<double>(clients * queries_per_client) / (read_ms / 1000.0);

  replica_server.Stop();
  for (const auto& replica : fleet) replica->replicator->Stop();
  primary_server.Stop();

  const bool lag_ok = lag_p99 < max_p99_lag_ms;
  const bool reads_ok = read_errors.load() == 0;
  const bool steady = reconnects == 0;
  std::printf(
      "replication: %zu writes -> %zu replicas, lag p50 %.3f ms p99 %.3f ms "
      "(gate < %.0f ms: %s)\n"
      "  stream wall %.1f ms, replica reads %.0f qps (%zu clients x %zu), "
      "read errors: %zu\n"
      "  byte-identical replicas: %s, reconnects: %llu\n",
      writes, replicas, lag_p50, lag_p99, max_p99_lag_ms,
      lag_ok ? "ok" : "BLOWN", stream_ms, replica_qps, clients,
      queries_per_client, read_errors.load(), byte_identical ? "yes" : "NO",
      static_cast<unsigned long long>(reconnects));

  Json record = Json::Object();
  record.Set("bench", Json::Str("replication"));
  record.Set("writes", Json::Int(static_cast<int64_t>(writes)));
  record.Set("replicas", Json::Int(static_cast<int64_t>(replicas)));
  record.Set("lag_p50_ms", Json::Double(lag_p50));
  record.Set("lag_p99_ms", Json::Double(lag_p99));
  record.Set("stream_wall_ms", Json::Double(stream_ms));
  record.Set("replica_read_qps", Json::Double(replica_qps));
  record.Set("read_clients", Json::Int(static_cast<int64_t>(clients)));
  record.Set("byte_identical", Json::Bool(byte_identical));
  record.Set("reconnects", Json::Int(static_cast<int64_t>(reconnects)));
  record.Set("lag_gate_ms", Json::Double(max_p99_lag_ms));
  record.Set("lag_ok", Json::Bool(lag_ok));
  std::ofstream out(json_path);
  if (out) {
    out << record.Serialize() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return byte_identical && lag_ok && reads_ok && steady ? 0 : 1;
}
