// Experiment E9: the Section 3.2 extended-SQL query - "list all
// starships that are spying on Mars without any doubt" - run verbatim
// through the MSQL front end, then timed, alongside its component
// single-mode queries.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mls/sample_data.h"
#include "msql/executor.h"

namespace {

using namespace multilog;

constexpr const char* kQuery = R"(
  select starship from mission
  where starship in (select starship from mission
                     where destin = mars and objective = spying
                     believed cautiously)
    and starship in (select starship from mission
                     where destin = mars and objective = spying
                     believed firmly)
    and starship in (select starship from mission
                     where destin = mars and objective = spying
                     believed optimistically)
)";

struct Fixture {
  mls::MissionDataset ds;
  msql::Session session;
};

Fixture& TheFixture() {
  static Fixture& f = *new Fixture([]() {
    auto ds = mls::BuildMissionDataset();
    if (!ds.ok()) std::abort();
    Fixture fixture{std::move(ds).value(), msql::Session()};
    fixture.session.RegisterRelation("mission", fixture.ds.mission.get());
    fixture.session.SetUserContext("s");
    return fixture;
  }());
  return f;
}

void PrintFigures() {
  std::printf(
      "Section 3.2: \"List all starships that are spying on Mars without "
      "any doubt.\"\n\nuser context s%s\n",
      kQuery);
  auto rs = TheFixture().session.Execute(kQuery);
  if (!rs.ok()) std::abort();
  std::printf("%s\n", rs->ToString().c_str());

  std::printf("Per-mode components at s:\n");
  for (const char* mode : {"firmly", "optimistically", "cautiously"}) {
    auto part = TheFixture().session.Execute(
        std::string("select starship from mission where destin = mars and "
                    "objective = spying believed ") +
        mode);
    if (!part.ok()) std::abort();
    std::printf("believed %s:\n%s", mode, part->ToString().c_str());
  }
  std::printf("\n");
}

void BM_FullQuery(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(TheFixture().session.Execute(kQuery));
  }
}

void BM_SingleMode(benchmark::State& state, const char* mode) {
  const std::string sql =
      std::string("select starship from mission where destin = mars and "
                  "objective = spying believed ") +
      mode;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TheFixture().session.Execute(sql));
  }
}

void BM_SigmaViewQuery(benchmark::State& state) {
  // The un-believed baseline: the plain Jajodia-Sandhu view.
  for (auto _ : state) {
    benchmark::DoNotOptimize(TheFixture().session.Execute(
        "select starship from mission where destin = mars"));
  }
}

BENCHMARK(BM_FullQuery);
BENCHMARK_CAPTURE(BM_SingleMode, firmly, "firmly");
BENCHMARK_CAPTURE(BM_SingleMode, optimistically, "optimistically");
BENCHMARK_CAPTURE(BM_SingleMode, cautiously, "cautiously");
BENCHMARK(BM_SigmaViewQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
