// Experiment E16: exercises the Figure 13 extensions - FILTER,
// FILTER-NULL, and USER-BELIEF - printing what each adds to the basic
// proof system, then timing their overhead.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "multilog/engine.h"
#include "multilog/interpreter.h"
#include "multilog/parser.h"

namespace {

using namespace multilog;
using namespace multilog::ml;

constexpr const char* kSource = R"(
  level(u). level(c). level(s). order(u, c). order(c, s).
  s[asset(k1 : kind -u-> radar, site -s-> ridge)].
  c[asset(k2 : kind -c-> truck, site -c-> depot)].
  u[asset(k3 : kind -u-> tent,  site -u-> camp)].
  bel(P, K, A, V, C, H, peer) :- rel(P, K, A, V, C, H).
  bel(P, K, A, V, C, H, peer) :- order(L, H), rel(P, K, A, V, C, L).
)";

CheckedDatabase& Db() {
  static CheckedDatabase& cdb = *new CheckedDatabase([]() {
    auto db = ParseMultiLog(kSource);
    if (!db.ok()) std::abort();
    auto checked = CheckDatabase(std::move(*db));
    if (!checked.ok()) std::abort();
    return std::move(checked).value();
  }());
  return cdb;
}

void ShowAnswers(const char* caption, Interpreter::Options options,
                 const char* goal) {
  auto interp = Interpreter::Create(&Db(), "s", options);
  if (!interp.ok()) std::abort();
  auto parsed = ParseMlGoal(goal);
  if (!parsed.ok()) std::abort();
  auto answers = interp->Solve(*parsed);
  std::printf("%s\n  ?- %s\n", caption, goal);
  if (!answers.ok()) {
    std::printf("  error: %s\n", answers.status().ToString().c_str());
    return;
  }
  if (answers->empty()) std::printf("  no\n");
  for (const auto& a : *answers) {
    std::printf("  %s\n", a.subst.ToString().c_str());
  }
  std::printf("\n");
}

void PrintFigures() {
  std::printf("Figure 13 extensions on a three-level asset database\n\n");

  Interpreter::Options plain;
  ShowAnswers("Baseline (no filtering): the u level sees only u data",
              plain, "u[asset(K : kind -C-> V)]");

  Interpreter::Options filter;
  filter.enable_filter = true;
  ShowAnswers(
      "FILTER: u inherits the u-classified cells of higher tuples "
      "(radar's kind flows down; its s-classified site does not)",
      filter, "u[asset(K : kind -C-> V)]");

  Interpreter::Options filter_null;
  filter_null.enable_filter_null = true;
  ShowAnswers(
      "FILTER-NULL: hidden higher cells surface as nulls - the sigma "
      "filter's surprise stories, reconstructed deliberately",
      filter_null, "u[asset(K : site -C-> V)]");

  Interpreter::Options user;
  ShowAnswers(
      "USER-BELIEF: the Pi-defined 'peer' mode (own level + one below)",
      user, "s[asset(K : kind -C-> V)] << peer");
}

void BM_Solve(benchmark::State& state, bool filter, bool filter_null,
              const char* goal) {
  Interpreter::Options options;
  options.enable_filter = filter;
  options.enable_filter_null = filter_null;
  auto parsed = ParseMlGoal(goal);
  if (!parsed.ok()) std::abort();
  for (auto _ : state) {
    state.PauseTiming();
    auto interp = Interpreter::Create(&Db(), "s", options);
    state.ResumeTiming();
    benchmark::DoNotOptimize(interp->Solve(*parsed));
  }
}

BENCHMARK_CAPTURE(BM_Solve, baseline, false, false,
                  "u[asset(K : kind -C-> V)]");
BENCHMARK_CAPTURE(BM_Solve, with_filter, true, false,
                  "u[asset(K : kind -C-> V)]");
BENCHMARK_CAPTURE(BM_Solve, with_filter_null, false, true,
                  "u[asset(K : site -C-> V)]");
BENCHMARK_CAPTURE(BM_Solve, user_mode, false, false,
                  "s[asset(K : kind -C-> V)] << peer");

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
