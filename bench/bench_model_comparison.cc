// Experiment E20 (beyond the paper's figures): the paper's Section 3
// argument as a single comparison - the three belief models side by
// side on the Mission relation, plus timings.
//
//  1. Jajodia-Sandhu: the sigma view; users "are left to discover the
//     truth" (and surprise stories leak).
//  2. Jukic-Vrbsky: fixed asserted interpretations; no reasoning, and
//     extra label state (mirage) users must maintain. We show both the
//     asserted matrix (Figure 5) and what is derivable without labels.
//  3. MultiLog's beta: dynamic belief in three modes, surprise-free.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/interpretation.h"
#include "mls/sample_data.h"

namespace {

using namespace multilog;
using namespace multilog::mls;

const MissionDataset& Dataset() {
  static const MissionDataset& ds = *new MissionDataset(
      []() {
        auto r = BuildMissionDataset();
        if (!r.ok()) std::abort();
        return std::move(r).value();
      }());
  return ds;
}

void PrintComparison() {
  const MissionDataset& ds = Dataset();

  std::printf("Model 1 - Jajodia-Sandhu sigma view at C (Figure 3):\n%s",
              ds.mission->ViewAt("c")->ToString().c_str());
  auto surprises = FindSurpriseStories(*ds.mission, "c");
  std::printf("  -> %zu surprise stories leak\n\n", surprises->size());

  std::printf(
      "Model 2a - Jukic-Vrbsky asserted interpretations (Figure 5):\n%s\n",
      ds.jv_mission->RenderInterpretations({"u", "c", "s"})->c_str());
  std::printf(
      "Model 2b - the same interpretations *derived* from the raw\n"
      "relation (no labels; mirage degrades to irrelevant):\n%s\n",
      RenderComputedInterpretations(*ds.mission, {"u", "c", "s"})->c_str());

  std::printf("Model 3 - MultiLog's parametric belief at C:\n");
  for (auto [mode, name] :
       {std::pair{BeliefMode::kFirm, "firm"},
        std::pair{BeliefMode::kOptimistic, "optimistic"},
        std::pair{BeliefMode::kCautious, "cautious"}}) {
    auto out = Believe(*ds.mission, "c", mode);
    std::printf("\nbeta(Mission, c, %s):\n%s", name,
                out->relation.ToString().c_str());
  }
  std::printf("  -> no nulls, no surprise stories, user-chosen semantics\n\n");
}

void BM_SigmaView(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dataset().mission->ViewAt("c"));
  }
}

void BM_JvAsserted(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    for (const auto& t : ds.jv_mission->tuples()) {
      benchmark::DoNotOptimize(ds.jv_mission->Interpret(t, "c"));
    }
  }
}

void BM_JvDerived(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    for (const auto& t : ds.mission->tuples()) {
      benchmark::DoNotOptimize(ComputeInterpretation(*ds.mission, t, "c"));
    }
  }
}

void BM_BetaAllModes(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    for (BeliefMode mode : {BeliefMode::kFirm, BeliefMode::kOptimistic,
                            BeliefMode::kCautious}) {
      benchmark::DoNotOptimize(Believe(*ds.mission, "c", mode));
    }
  }
}

BENCHMARK(BM_SigmaView);
BENCHMARK(BM_JvAsserted);
BENCHMARK(BM_JvDerived);
BENCHMARK(BM_BetaAllModes);

}  // namespace

int main(int argc, char** argv) {
  PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
