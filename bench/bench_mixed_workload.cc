// Mixed-workload benchmark: a seeded 90/10 read/write stream at mixed
// clearances, run twice over identical operation sequences - once with
// incremental maintenance (the delta-driven fixpoint keeping cached
// models live across writes) and once with write-through invalidation
// (--no-incremental semantics: every dominated cache entry is dropped
// and the next read pays a full reduce + evaluate). The headline number
// is post-write query latency: the first read after a write, which the
// incremental engine serves from the maintained model and the
// invalidating engine rebuilds from Sigma.
//
// Correctness rides along: every read's answers are byte-compared
// between the two engines, and the run exits non-zero on any mismatch -
// the live-vs-scratch identity the maintenance layer guarantees.
//
//   $ bench_mixed_workload [--keys N] [--writes N] [--reads-per-write N]
//                          [--min-speedup X] [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_INCREMENTAL_JSON, or to BENCH_incremental.json (in that
// order). scripts/run_experiments.sh runs it with --min-speedup 5: the
// full-size run must show >= 5x lower post-write query latency.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "server/json.h"

namespace {

using namespace multilog;
using server::Json;

constexpr const char* kLevels[] = {"u", "c", "s"};

/// The seeded database: a three-level chain, `keys` facts spread across
/// the levels, and a derived predicate so reads exercise rules, not
/// just fact lookup.
std::string SeedSource(size_t keys) {
  std::string src =
      "level(u). level(c). level(s).\n"
      "order(u, c). order(c, s).\n"
      "roster(K) :- u[obj(K : val -u-> V)].\n";
  for (size_t i = 0; i < keys; ++i) {
    const char* level = kLevels[i % 3];
    src += std::string(level) + "[obj(k" + std::to_string(i) + " : val -" +
           level + "-> v" + std::to_string(i % 7) + ")].\n";
  }
  return src;
}

double Micros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// One engine's side of the paired run: issues the op, times reads, and
/// renders answers for the byte-identity check.
struct Side {
  ml::Engine* engine;
  std::vector<double> post_write_us;  // first read after each write
  std::vector<double> read_us;        // every read
};

Result<std::string> TimedRead(Side* side, const std::string& goal,
                              const std::string& level, bool post_write) {
  const auto start = std::chrono::steady_clock::now();
  MULTILOG_ASSIGN_OR_RETURN(ml::QueryResult r,
                            side->engine->QuerySource(goal, level));
  const double us = Micros(start);
  side->read_us.push_back(us);
  if (post_write) side->post_write_us.push_back(us);
  std::string rendered;
  for (const datalog::Substitution& answer : r.answers) {
    rendered += answer.ToString();
    rendered += '\n';
  }
  return rendered;
}

}  // namespace

int main(int argc, char** argv) {
  size_t keys = 2000;
  size_t writes = 60;
  size_t reads_per_write = 9;  // 90/10 read/write mix
  double min_speedup = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--keys") {
      keys = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--writes") {
      writes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--reads-per-write") {
      reads_per_write = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--writes N] [--reads-per-write N] "
                   "[--min-speedup X] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_INCREMENTAL_JSON");
    json_path = env != nullptr ? env : "BENCH_incremental.json";
  }

  const std::string source = SeedSource(keys);
  ml::EngineOptions incremental_options;
  incremental_options.incremental = true;
  ml::EngineOptions invalidate_options;
  invalidate_options.incremental = false;
  Result<ml::Engine> live = ml::Engine::FromSource(source, incremental_options);
  Result<ml::Engine> cold = ml::Engine::FromSource(source, invalidate_options);
  if (!live.ok() || !cold.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 (!live.ok() ? live : cold).status().ToString().c_str());
    return 1;
  }
  Side sides[2] = {{&*live, {}, {}}, {&*cold, {}, {}}};

  // Warm every clearance's cache on both engines, as a serving process
  // would before taking traffic.
  const std::string wide_goal_tail = "[obj(K : val -C-> V)] << opt";
  for (const char* level : kLevels) {
    for (Side& side : sides) {
      Result<ml::QueryResult> r =
          side.engine->QuerySource(std::string(level) + wide_goal_tail, level);
      if (!r.ok()) {
        std::fprintf(stderr, "warmup: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
  }
  sides[0].read_us.clear();
  sides[1].read_us.clear();

  // The measured stream: each round is one write (2 in 3 asserts a
  // fresh fact, 1 in 3 retracts the previous round's) followed by
  // `reads_per_write` reads cycling the clearances; every read is
  // byte-compared across the engines.
  size_t mismatches = 0;
  std::string last_fact;
  std::string last_fact_level;
  for (size_t w = 0; w < writes; ++w) {
    const char* level = kLevels[w % 3];
    const bool retract = w % 3 == 2 && !last_fact.empty();
    std::string fact;
    if (retract) {
      fact = last_fact;
      level = last_fact_level.c_str();
    } else {
      // Mutations must carry a key cell (value = key, Definition 5.4).
      const std::string key = "w" + std::to_string(w);
      fact = std::string(level) + "[obj(" + key + " : val -" + level + "-> " +
             key + ")].";
      last_fact = fact;
      last_fact_level = level;
    }
    for (Side& side : sides) {
      Result<ml::WriteResult> r = retract ? side.engine->Retract(fact, level)
                                          : side.engine->Assert(fact, level);
      if (!r.ok()) {
        std::fprintf(stderr, "write %s: %s\n", fact.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
    }
    for (size_t q = 0; q < reads_per_write; ++q) {
      const std::string read_level = kLevels[(w + q) % 3];
      // The timed post-write read is a point query - the shape a
      // serving layer answers right after a write - so it isolates the
      // rebuild-vs-maintain cost from answer enumeration; the remaining
      // reads stay entity-wide to keep the byte comparison broad.
      const std::string goal =
          q == 0 ? read_level + "[obj(k" + std::to_string(w % keys) +
                       " : val -C-> V)] << opt"
                 : read_level + wide_goal_tail;
      Result<std::string> a =
          TimedRead(&sides[0], goal, read_level, /*post_write=*/q == 0);
      Result<std::string> b =
          TimedRead(&sides[1], goal, read_level, /*post_write=*/q == 0);
      if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "read: %s\n",
                     (!a.ok() ? a : b).status().ToString().c_str());
        return 1;
      }
      if (*a != *b) {
        ++mismatches;
        std::fprintf(stderr,
                     "FAIL: answers diverged after write %zu read %zu (%s)\n",
                     w, q, goal.c_str());
      }
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu diverging reads\n", mismatches);
    return 1;
  }

  const double live_post_us = Mean(sides[0].post_write_us);
  const double cold_post_us = Mean(sides[1].post_write_us);
  const double live_read_us = Mean(sides[0].read_us);
  const double cold_read_us = Mean(sides[1].read_us);
  const double post_speedup = live_post_us > 0 ? cold_post_us / live_post_us : 0;
  const ml::EngineCounters counters = live->Counters();

  std::printf(
      "mixed workload: %zu seed facts, %zu writes x %zu reads "
      "(90/10 mix, clearances u/c/s)\n"
      "post-write query: %.1f us incremental vs %.1f us invalidate "
      "(%.1fx)\n"
      "all reads:        %.1f us incremental vs %.1f us invalidate\n"
      "maintenance: %llu deltas applied, %llu fallback recomputes, "
      "byte-identical answers on every read\n",
      keys, writes, reads_per_write, live_post_us, cold_post_us, post_speedup,
      live_read_us, cold_read_us,
      static_cast<unsigned long long>(counters.deltas_applied),
      static_cast<unsigned long long>(counters.fallback_recomputes));

  Json record = Json::Object();
  record.Set("bench", Json::Str("mixed_workload"));
  record.Set("seed_facts", Json::Int(static_cast<int64_t>(keys)));
  record.Set("writes", Json::Int(static_cast<int64_t>(writes)));
  record.Set("reads_per_write",
             Json::Int(static_cast<int64_t>(reads_per_write)));
  record.Set("incremental_post_write_us", Json::Double(live_post_us));
  record.Set("invalidate_post_write_us", Json::Double(cold_post_us));
  record.Set("post_write_speedup", Json::Double(post_speedup));
  record.Set("incremental_read_us", Json::Double(live_read_us));
  record.Set("invalidate_read_us", Json::Double(cold_read_us));
  record.Set("deltas_applied",
             Json::Int(static_cast<int64_t>(counters.deltas_applied)));
  record.Set("fallback_recomputes",
             Json::Int(static_cast<int64_t>(counters.fallback_recomputes)));
  record.Set("byte_identical", Json::Bool(true));
  std::ofstream out(json_path, std::ios::trunc);
  out << record.Serialize() << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (min_speedup > 0 && post_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: post-write speedup %.2fx below required %.2fx\n",
                 post_speedup, min_speedup);
    return 1;
  }
  return 0;
}
