// Point-query benchmark for goal-directed evaluation: a large Sigma on
// a three-level chain, an interleaved write stream so every measured
// read is cold, and the same selective point query answered twice -
// once by an engine with the compiled magic-plan cache
// (EngineOptions::magic) and once by an engine pinned to the full
// bottom-up path. Both engines run with incremental maintenance off:
// the comparison is "rebuild the world to answer one key" versus
// "derive only the query's cone", which is exactly the regime the
// magic path exists for. Every read (the timed point reads and the
// wide identity sweeps) is byte-compared between the engines.
//
//   $ bench_magic_pointquery [--keys N] [--writes N] [--min-speedup X]
//                            [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_MAGIC_JSON, or to BENCH_magic.json (in that order).
// scripts/run_experiments.sh runs it with --min-speedup 5: the
// full-size run must answer cold point queries >= 5x faster with the
// plan cache than with full bottom-up evaluation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "server/json.h"

namespace {

using namespace multilog;
using server::Json;

constexpr const char* kLevels[] = {"u", "c", "s"};

/// The seeded database: a three-level chain with `keys` obj facts
/// spread across the levels. Point queries still exercise rules - the
/// reduction's inheritance axioms derive each fact at every dominating
/// level - so the full path must evaluate the whole cone while the
/// plan path derives one key's slice.
std::string SeedSource(size_t keys) {
  std::string src =
      "level(u). level(c). level(s).\n"
      "order(u, c). order(c, s).\n"
      "roster(K) :- u[obj(K : val -u-> V)].\n";
  for (size_t i = 0; i < keys; ++i) {
    const char* level = kLevels[i % 3];
    src += std::string(level) + "[obj(k" + std::to_string(i) + " : val -" +
           level + "-> v" + std::to_string(i % 7) + ")].\n";
  }
  return src;
}

double Micros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

struct Side {
  ml::Engine* engine;
  std::vector<double> point_us;  // the timed cold point reads
};

Result<std::string> Render(ml::Engine* engine, const std::string& goal,
                           const std::string& level) {
  MULTILOG_ASSIGN_OR_RETURN(ml::QueryResult r,
                            engine->QuerySource(goal, level));
  std::string rendered;
  for (const datalog::Substitution& answer : r.answers) {
    rendered += answer.ToString();
    rendered += '\n';
  }
  return rendered;
}

}  // namespace

int main(int argc, char** argv) {
  size_t keys = 3000;
  size_t writes = 45;
  double min_speedup = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--keys") {
      keys = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--writes") {
      writes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--writes N] [--min-speedup X] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_MAGIC_JSON");
    json_path = env != nullptr ? env : "BENCH_magic.json";
  }

  const std::string source = SeedSource(keys);
  ml::EngineOptions magic_options;
  magic_options.magic = true;
  magic_options.incremental = false;
  ml::EngineOptions full_options;
  full_options.magic = false;
  full_options.incremental = false;
  Result<ml::Engine> magic = ml::Engine::FromSource(source, magic_options);
  Result<ml::Engine> full = ml::Engine::FromSource(source, full_options);
  if (!magic.ok() || !full.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 (!magic.ok() ? magic : full).status().ToString().c_str());
    return 1;
  }
  Side sides[2] = {{&*magic, {}}, {&*full, {}}};

  // Warmup: one point read per clearance on both engines - compiles
  // the plan shapes and builds the full engine's models - then one wide
  // identity sweep.
  size_t mismatches = 0;
  auto compare = [&](const std::string& goal,
                     const std::string& level) -> bool {
    Result<std::string> a = Render(sides[0].engine, goal, level);
    Result<std::string> b = Render(sides[1].engine, goal, level);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "read %s: %s\n", goal.c_str(),
                   (!a.ok() ? a : b).status().ToString().c_str());
      std::exit(1);
    }
    if (*a != *b) {
      ++mismatches;
      std::fprintf(stderr, "FAIL: answers diverged on %s @ %s\n",
                   goal.c_str(), level.c_str());
      return false;
    }
    return true;
  };
  for (const char* level : kLevels) {
    compare(std::string(level) + "[obj(k0 : val -C-> V)]", "s");
    compare(std::string(level) + "[obj(K : val -C-> V)]", level);
  }

  // The measured stream: each round writes (so both engines' caches
  // for the written cone are gone), then times ONE cold point read per
  // engine - the shape a serving layer answers right after a write -
  // and byte-compares it. A periodic wide sweep keeps the identity
  // check broad without entering the timing.
  std::string last_fact;
  std::string last_level;
  for (size_t w = 0; w < writes; ++w) {
    const char* level = kLevels[w % 3];
    const bool retract = w % 3 == 2 && !last_fact.empty();
    std::string fact;
    if (retract) {
      fact = last_fact;
      level = last_level.c_str();
    } else {
      const std::string key = "w" + std::to_string(w);
      fact = std::string(level) + "[obj(" + key + " : val -" + level + "-> " +
             key + ")].";
      last_fact = fact;
      last_level = level;
    }
    for (Side& side : sides) {
      Result<ml::WriteResult> r = retract ? side.engine->Retract(fact, level)
                                          : side.engine->Assert(fact, level);
      if (!r.ok()) {
        std::fprintf(stderr, "write %s: %s\n", fact.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
    }

    const std::string read_level = kLevels[2 - (w % 3)];
    const std::string goal = std::string(kLevels[w % 3]) + "[obj(k" +
                             std::to_string((w * 37) % keys) +
                             " : val -C-> V)]";
    std::string rendered[2];
    for (size_t s = 0; s < 2; ++s) {
      const auto start = std::chrono::steady_clock::now();
      Result<std::string> r = Render(sides[s].engine, goal, "s");
      const double us = Micros(start);
      if (!r.ok()) {
        std::fprintf(stderr, "read: %s\n", r.status().ToString().c_str());
        return 1;
      }
      sides[s].point_us.push_back(us);
      rendered[s] = std::move(*r);
    }
    if (rendered[0] != rendered[1]) {
      ++mismatches;
      std::fprintf(stderr, "FAIL: answers diverged after write %zu (%s)\n", w,
                   goal.c_str());
    }
    if (w % 8 == 7) {
      compare(read_level + "[obj(K : val -C-> V)]", "s");
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %zu diverging reads\n", mismatches);
    return 1;
  }

  const double magic_us = Mean(sides[0].point_us);
  const double full_us = Mean(sides[1].point_us);
  const double speedup = magic_us > 0 ? full_us / magic_us : 0;
  const ml::EngineCounters counters = magic->Counters();

  std::printf(
      "magic point query: %zu seed facts, %zu writes, cold point read "
      "after each\n"
      "cold point read: %.1f us plan-cache vs %.1f us full bottom-up "
      "(%.1fx)\n"
      "plans: %llu hits, %llu misses, %llu fallbacks; byte-identical "
      "answers on every read\n",
      keys, writes, magic_us, full_us, speedup,
      static_cast<unsigned long long>(counters.plan_hits),
      static_cast<unsigned long long>(counters.plan_misses),
      static_cast<unsigned long long>(counters.magic_fallbacks));

  Json record = Json::Object();
  record.Set("bench", Json::Str("magic_pointquery"));
  record.Set("seed_facts", Json::Int(static_cast<int64_t>(keys)));
  record.Set("writes", Json::Int(static_cast<int64_t>(writes)));
  record.Set("magic_point_us", Json::Double(magic_us));
  record.Set("full_point_us", Json::Double(full_us));
  record.Set("point_speedup", Json::Double(speedup));
  record.Set("plan_hits", Json::Int(static_cast<int64_t>(counters.plan_hits)));
  record.Set("plan_misses",
             Json::Int(static_cast<int64_t>(counters.plan_misses)));
  record.Set("magic_fallbacks",
             Json::Int(static_cast<int64_t>(counters.magic_fallbacks)));
  record.Set("byte_identical", Json::Bool(true));
  std::ofstream out(json_path, std::ios::trunc);
  out << record.Serialize() << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: point-query speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
