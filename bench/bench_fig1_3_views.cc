// Experiments E1-E3: regenerates Figures 1-3 of the paper (the Mission
// relation and its Jajodia-Sandhu views at U and C), then times view
// computation on the paper's data.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mls/integrity.h"
#include "mls/sample_data.h"

namespace {

using multilog::mls::BuildMissionDataset;
using multilog::mls::MissionDataset;
using multilog::mls::Relation;

const MissionDataset& Dataset() {
  static const MissionDataset& ds = *new MissionDataset(
      []() {
        auto r = BuildMissionDataset();
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          std::abort();
        }
        return std::move(r).value();
      }());
  return ds;
}

void PrintFigures() {
  const MissionDataset& ds = Dataset();
  std::printf("Figure 1: MLS relation Mission\n%s\n",
              ds.mission->ToString().c_str());
  std::printf("Figure 2: U level view of Mission\n%s\n",
              ds.mission->ViewAt("u")->ToString().c_str());
  std::printf("Figure 3: C level view of Mission\n%s\n",
              ds.mission->ViewAt("c")->ToString().c_str());
  auto surprises = multilog::mls::FindSurpriseStories(*ds.mission, "c");
  std::printf("Surprise stories at C (the paper's t4/t5): %zu\n\n",
              surprises->size());
}

void BM_ViewAt(benchmark::State& state, const char* level,
               bool subsumption) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    auto view = ds.mission->ViewAt(level, subsumption);
    benchmark::DoNotOptimize(view);
  }
}

void BM_SurpriseAudit(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    auto s = multilog::mls::FindSurpriseStories(*ds.mission, "c");
    benchmark::DoNotOptimize(s);
  }
}

void BM_IntegrityCheck(benchmark::State& state) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(multilog::mls::CheckConsistent(*ds.mission));
  }
}

BENCHMARK_CAPTURE(BM_ViewAt, u_subsumed, "u", true);
BENCHMARK_CAPTURE(BM_ViewAt, c_subsumed, "c", true);
BENCHMARK_CAPTURE(BM_ViewAt, s_subsumed, "s", true);
BENCHMARK_CAPTURE(BM_ViewAt, c_raw, "c", false);
BENCHMARK(BM_SurpriseAudit);
BENCHMARK(BM_IntegrityCheck);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
