// Experiments E6-E8: regenerates Figures 6-8 (the firm, optimistic, and
// cautious views of Mission at level C via the parametric belief
// function beta of Definition 3.1), then times beta in each mode - the
// paper's core contribution.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mls/belief.h"
#include "mls/sample_data.h"

namespace {

using namespace multilog::mls;

const MissionDataset& Dataset() {
  static const MissionDataset& ds = *new MissionDataset(
      []() {
        auto r = BuildMissionDataset();
        if (!r.ok()) std::abort();
        return std::move(r).value();
      }());
  return ds;
}

void PrintFigures() {
  const MissionDataset& ds = Dataset();
  struct Row {
    BeliefMode mode;
    const char* caption;
  };
  const Row rows[] = {
      {BeliefMode::kFirm, "Figure 6: Conservative or firm view at level C"},
      {BeliefMode::kOptimistic, "Figure 7: An optimistic view at level C"},
      {BeliefMode::kCautious, "Figure 8: Cautious view at level C"},
  };
  for (const Row& row : rows) {
    auto out = Believe(*ds.mission, "c", row.mode);
    if (!out.ok()) std::abort();
    std::printf("%s\n%s\n", row.caption,
                out->relation.ToString().c_str());
  }
  std::printf(
      "Note: beta deliberately omits the null-bearing tuples t4/t5 the\n"
      "paper prints in Figures 7-8 - they are the surprise stories it\n"
      "exists to suppress (Sections 3.2 and 7).\n\n");
}

void BM_Beta(benchmark::State& state, const char* level, BeliefMode mode) {
  const MissionDataset& ds = Dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Believe(*ds.mission, level, mode));
  }
}

BENCHMARK_CAPTURE(BM_Beta, fir_at_c, "c", BeliefMode::kFirm);
BENCHMARK_CAPTURE(BM_Beta, opt_at_c, "c", BeliefMode::kOptimistic);
BENCHMARK_CAPTURE(BM_Beta, cau_at_c, "c", BeliefMode::kCautious);
BENCHMARK_CAPTURE(BM_Beta, fir_at_s, "s", BeliefMode::kFirm);
BENCHMARK_CAPTURE(BM_Beta, opt_at_s, "s", BeliefMode::kOptimistic);
BENCHMARK_CAPTURE(BM_Beta, cau_at_s, "s", BeliefMode::kCautious);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
