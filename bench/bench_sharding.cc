// Sharding benchmark: N in-process shard servers behind the scatter-
// gather router, against one reference engine fed the identical
// (unsplit) source. Records routed point-query latency (router hop +
// owning shard) next to the single-engine baseline, and scatter-gather
// wide-query latency, all over real loopback sockets.
//
// Correctness rides along with the load: every scatter answer set is
// byte-compared against the reference engine at every level (the
// router's merge must be indistinguishable from one engine holding all
// of Sigma), every routed point answer is byte-compared too, and a
// write phase routes fresh facts through the router and re-checks the
// merge. The run fails (non-zero exit) on any divergence or any routing
// error.
//
//   $ bench_sharding [--keys N] [--shards N] [--queries N]
//                    [--scatters N] [--writes N] [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_SHARDING_JSON, or to BENCH_sharding.json (in that order).
// scripts/run_experiments.sh picks it up as the sharding experiment
// (EXPERIMENTS.md section K).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "sharding/router.h"
#include "sharding/routing.h"
#include "sharding/shard_map.h"

namespace {

using namespace multilog;
using server::Client;
using server::Json;

constexpr const char* kLevels[] = {"u", "c", "s"};

/// A Sigma spread over `keys` entities at rotating levels, plus an
/// anchored replicated rule so scatter answers mix stored and derived
/// cells. Every fact carries a key cell (Def. 5.4 entity integrity).
std::string BuildSource(size_t keys) {
  std::string src =
      "level(u). level(c). level(s).\n"
      "order(u, c). order(c, s).\n";
  for (size_t i = 0; i < keys; ++i) {
    const std::string level = kLevels[i % 3];
    const std::string key = "k" + std::to_string(i);
    src += level + "[doc(" + key + " : id -" + level + "-> " + key +
           ", val -" + level + "-> v" + std::to_string(i % 7) + ")].\n";
  }
  src += "s[doc(K : vet -u-> yes)] :- u[doc(K : id -u-> K)] << cau.\n";
  return src;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

/// One query round trip, timed; returns the serialized answers or ""
/// on error (counted by the caller).
std::string TimedAnswers(Client& client, const std::string& goal,
                         std::vector<double>* samples, size_t* errors) {
  const auto start = std::chrono::steady_clock::now();
  Result<Json> r = client.Query(goal);
  samples->push_back(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count());
  const Json* answers = r.ok() ? r->Find("answers") : nullptr;
  if (answers == nullptr) {
    ++*errors;
    return "";
  }
  return answers->Serialize();
}

}  // namespace

int main(int argc, char** argv) {
  size_t keys = 240;
  size_t shards = 4;
  size_t point_queries = 400;
  size_t scatter_queries = 60;
  size_t writes = 60;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--keys") {
      keys = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--shards") {
      shards = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--queries") {
      point_queries = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--scatters") {
      scatter_queries = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--writes") {
      writes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--shards N] [--queries N] "
                   "[--scatters N] [--writes N] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_SHARDING_JSON");
    json_path = env != nullptr ? env : "BENCH_sharding.json";
  }

  const std::string source = BuildSource(keys);

  // --- Shard fleet: PartitionSource's split, one server per shard. ---
  const sharding::ShardMap map(shards);
  Result<std::vector<std::string>> parts =
      sharding::PartitionSource(source, map);
  if (!parts.ok()) {
    std::fprintf(stderr, "partition: %s\n", parts.status().ToString().c_str());
    return 1;
  }
  std::vector<std::unique_ptr<ml::Engine>> shard_engines;
  std::vector<std::unique_ptr<server::Server>> shard_servers;
  sharding::RouterOptions router_options;
  for (const std::string& part : *parts) {
    Result<ml::Engine> engine = ml::Engine::FromSource(part);
    if (!engine.ok()) {
      std::fprintf(stderr, "shard engine: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    shard_engines.push_back(
        std::make_unique<ml::Engine>(std::move(engine).value()));
    server::ServerOptions options;
    options.port = 0;
    shard_servers.push_back(std::make_unique<server::Server>(
        shard_engines.back().get(), options,
        std::vector<server::SqlCatalogEntry>{}));
    if (Status s = shard_servers.back()->Start(); !s.ok()) {
      std::fprintf(stderr, "shard start: %s\n", s.ToString().c_str());
      return 1;
    }
    router_options.shards.push_back({"127.0.0.1",
                                     shard_servers.back()->port()});
  }
  sharding::Router router(source, router_options);
  if (Status s = router.Start(); !s.ok()) {
    std::fprintf(stderr, "router start: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Reference: one engine over the unsplit source. ----------------
  Result<ml::Engine> reference = ml::Engine::FromSource(source);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference engine: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  server::ServerOptions ref_options;
  ref_options.port = 0;
  server::Server reference_server(&*reference, ref_options);
  if (Status s = reference_server.Start(); !s.ok()) {
    std::fprintf(stderr, "reference start: %s\n", s.ToString().c_str());
    return 1;
  }

  auto connect = [](uint16_t port, const char* level) -> Result<Client> {
    Result<Client> client = Client::Connect(port);
    if (!client.ok()) return client;
    if (Result<Json> hello = client->Hello(level); !hello.ok()) {
      return hello.status();
    }
    return client;
  };
  Result<Client> via_router = connect(router.port(), "s");
  Result<Client> via_ref = connect(reference_server.port(), "s");
  if (!via_router.ok() || !via_ref.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 (!via_router.ok() ? via_router : via_ref)
                     .status().ToString().c_str());
    return 1;
  }

  size_t divergences = 0;
  size_t errors = 0;

  // --- Scatter-gather gate + latency: the merged wide answer must be
  // byte-identical to the single engine's, at every level. ------------
  std::vector<double> scatter_ms, scatter_ref_ms;
  const std::string wide_goal = "?- s[doc(K : val -R-> V)] << cau.";
  for (const char* level : kLevels) {
    Result<Client> a = connect(router.port(), level);
    Result<Client> b = connect(reference_server.port(), level);
    if (!a.ok() || !b.ok()) return 1;
    const std::string goal =
        "?- " + std::string(level) + "[doc(K : val -R-> V)] << cau.";
    const std::string got = TimedAnswers(*a, goal, &scatter_ms, &errors);
    const std::string want = TimedAnswers(*b, goal, &scatter_ref_ms, &errors);
    if (got != want) {
      std::fprintf(stderr, "scatter divergence at level %s\n", level);
      ++divergences;
    }
  }
  for (size_t i = 0; i < scatter_queries; ++i) {
    const std::string got =
        TimedAnswers(*via_router, wide_goal, &scatter_ms, &errors);
    const std::string want =
        TimedAnswers(*via_ref, wide_goal, &scatter_ref_ms, &errors);
    if (got != want) ++divergences;
  }

  // --- Point-query latency: routed vs the single-engine baseline.
  // Point relays are verbatim, so both sides must be byte-identical. --
  std::vector<double> point_ms, point_ref_ms;
  for (size_t i = 0; i < point_queries; ++i) {
    const std::string goal = "?- s[doc(k" + std::to_string(i % keys) +
                             " : vet -R-> V)] << cau.";
    const std::string got =
        TimedAnswers(*via_router, goal, &point_ms, &errors);
    const std::string want =
        TimedAnswers(*via_ref, goal, &point_ref_ms, &errors);
    if (got != want) ++divergences;
  }
  // QPS from the routed samples alone (the stream interleaves both
  // sides, so wall clock would charge the baseline to the router).
  double routed_total_ms = 0;
  for (double ms : point_ms) routed_total_ms += ms;
  const double routed_qps =
      routed_total_ms > 0 ? static_cast<double>(point_queries) /
                                (routed_total_ms / 1000.0)
                          : 0;

  // --- Write phase: fresh facts routed to their owners, then the wide
  // answer re-compared (the reference gets the same stream). ----------
  Result<Client> w_router = connect(router.port(), "c");
  Result<Client> w_ref = connect(reference_server.port(), "c");
  if (!w_router.ok() || !w_ref.ok()) return 1;
  for (size_t i = 0; i < writes; ++i) {
    const std::string entity = "fresh" + std::to_string(i);
    const std::string fact =
        "c[doc(" + entity + " : val -c-> " + entity + ")].";
    Result<Json> a = w_router->Assert(fact);
    Result<Json> b = w_ref->Assert(fact);
    if (a.ok() != b.ok()) {
      std::fprintf(stderr, "write outcome divergence at %zu\n", i);
      ++divergences;
    } else if (!a.ok()) {
      ++errors;
    }
  }
  {
    const std::string goal = "?- c[doc(K : val -R-> V)] << cau.";
    const std::string got =
        TimedAnswers(*via_router, goal, &scatter_ms, &errors);
    const std::string want =
        TimedAnswers(*via_ref, goal, &scatter_ref_ms, &errors);
    if (got != want) {
      std::fprintf(stderr, "post-write scatter divergence\n");
      ++divergences;
    }
  }

  const sharding::RouterCounters counters = router.Counters();
  router.Stop();
  for (auto& server : shard_servers) server->Stop();
  reference_server.Stop();

  std::sort(point_ms.begin(), point_ms.end());
  std::sort(point_ref_ms.begin(), point_ref_ms.end());
  std::sort(scatter_ms.begin(), scatter_ms.end());
  std::sort(scatter_ref_ms.begin(), scatter_ref_ms.end());
  const double point_p50 = Percentile(point_ms, 50);
  const double point_p99 = Percentile(point_ms, 99);
  const double point_ref_p50 = Percentile(point_ref_ms, 50);
  const double point_ref_p99 = Percentile(point_ref_ms, 99);
  const double scatter_p50 = Percentile(scatter_ms, 50);
  const double scatter_p99 = Percentile(scatter_ms, 99);
  const double scatter_ref_p50 = Percentile(scatter_ref_ms, 50);

  const bool clean = divergences == 0 && errors == 0 &&
                     counters.shard_errors == 0;
  std::printf(
      "sharding: %zu keys -> %zu shards, %zu point + %zu scatter queries, "
      "%zu writes\n"
      "  point routed p50 %.3f ms p99 %.3f ms (single engine p50 %.3f ms "
      "p99 %.3f ms), %.0f qps\n"
      "  scatter p50 %.3f ms p99 %.3f ms (single engine p50 %.3f ms)\n"
      "  divergences: %zu, errors: %zu, shard errors: %llu -> %s\n",
      keys, shards, point_queries, scatter_queries + 4, writes, point_p50,
      point_p99, point_ref_p50, point_ref_p99, routed_qps, scatter_p50,
      scatter_p99, scatter_ref_p50, divergences, errors,
      static_cast<unsigned long long>(counters.shard_errors),
      clean ? "ok" : "FAILED");

  Json record = Json::Object();
  record.Set("bench", Json::Str("sharding"));
  record.Set("keys", Json::Int(static_cast<int64_t>(keys)));
  record.Set("shards", Json::Int(static_cast<int64_t>(shards)));
  record.Set("point_queries", Json::Int(static_cast<int64_t>(point_queries)));
  record.Set("point_routed_p50_ms", Json::Double(point_p50));
  record.Set("point_routed_p99_ms", Json::Double(point_p99));
  record.Set("point_single_p50_ms", Json::Double(point_ref_p50));
  record.Set("point_single_p99_ms", Json::Double(point_ref_p99));
  record.Set("point_routed_qps", Json::Double(routed_qps));
  record.Set("scatter_p50_ms", Json::Double(scatter_p50));
  record.Set("scatter_p99_ms", Json::Double(scatter_p99));
  record.Set("scatter_single_p50_ms", Json::Double(scatter_ref_p50));
  record.Set("writes", Json::Int(static_cast<int64_t>(writes)));
  record.Set("divergences", Json::Int(static_cast<int64_t>(divergences)));
  record.Set("byte_identical", Json::Bool(divergences == 0));
  record.Set("errors", Json::Int(static_cast<int64_t>(errors)));
  std::ofstream out(json_path);
  if (out) {
    out << record.Serialize() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return clean ? 0 : 1;
}
