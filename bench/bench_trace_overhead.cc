// Trace overhead guard + per-stage latency breakdown.
//
// Two jobs, one binary:
//
//  1. **Overhead guard**: transitive closure on a random graph (the
//     tc_random workload of bench_scaling_datalog), timed min-of-N
//     with tracing disabled and with tracing globally enabled,
//     interleaved so machine drift hits both sides equally. The run
//     fails (exit 1) if enabling tracing costs more than
//     --max-overhead-pct. The disabled state costs strictly less than
//     the enabled one (a Span that is off never reads the clock), so
//     this bound covers the "compiled in but off" contract too.
//
//  2. **Stage breakdown**: the per-stage aggregate counters accumulated
//     during the traced runs, plus a traced Figure 11 query (r10
//     against the D1 database) whose span tree is flattened into
//     per-stage totals - the numbers behind EXPERIMENTS.md's per-stage
//     latency table.
//
//   $ bench_trace_overhead [--nodes N] [--reps N] [--max-overhead-pct P]
//                          [--json PATH]
//
// Machine-readable record: one JSON object written to --json, or to
// $MULTILOG_STAGES_JSON, or to BENCH_stages.json (in that order).
// scripts/run_experiments.sh picks it up as the observability
// experiment.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>

#include "common/trace.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/json.h"

namespace {

using namespace multilog;
using server::Json;

/// The tc_random workload: `nodes` vertices, 4x as many random edges,
/// transitive closure. Mirrors bench_scaling_datalog's generator (same
/// seed) so the overhead number is measured on a familiar workload.
datalog::Program RandomGraph(int nodes, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  datalog::Program p;
  for (int i = 0; i < nodes * 4; ++i) {
    p.AddFact(datalog::Atom(
        "edge", {datalog::Term::Sym("n" + std::to_string(pick(rng))),
                 datalog::Term::Sym("n" + std::to_string(pick(rng)))}));
  }
  auto parsed = datalog::ParseDatalog(
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
  p.Append(parsed->program);
  return p;
}

/// One timed evaluation, in milliseconds. Aborts on evaluation failure
/// (the workload is statically valid, so a failure is a bench bug).
double TimedEvalMs(const datalog::Program& p) {
  const auto start = std::chrono::steady_clock::now();
  auto model = datalog::Evaluate(p);
  const auto stop = std::chrono::steady_clock::now();
  if (!model.ok()) std::abort();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Flattens a span tree into per-stage (count, total µs) aggregates.
void AccumulateStages(const trace::SpanNode& node,
                      std::array<trace::StageTotal, trace::kNumStages>* out) {
  auto& slot = (*out)[static_cast<size_t>(node.stage)];
  slot.count += 1;
  slot.total_micros += node.duration_micros;
  for (const trace::SpanNode& child : node.children) {
    AccumulateStages(child, out);
  }
}

/// Stage aggregates as a JSON array, zero-count stages omitted.
Json StagesJson(const std::array<trace::StageTotal, trace::kNumStages>& agg) {
  Json arr = Json::Array();
  for (size_t i = 0; i < trace::kNumStages; ++i) {
    if (agg[i].count == 0) continue;
    Json entry = Json::Object();
    entry.Set("stage", Json::Str(trace::StageName(static_cast<trace::Stage>(i))));
    entry.Set("count", Json::Int(static_cast<int64_t>(agg[i].count)));
    entry.Set("total_us", Json::Int(static_cast<int64_t>(agg[i].total_micros)));
    arr.Push(entry);
  }
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 256;
  int reps = 9;
  double max_overhead_pct = 2.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--nodes") {
      nodes = std::atoi(next());
    } else if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--max-overhead-pct") {
      max_overhead_pct = std::atof(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes N] [--reps N] [--max-overhead-pct P] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (json_path.empty()) {
    const char* env = std::getenv("MULTILOG_STAGES_JSON");
    json_path = env != nullptr ? env : "BENCH_stages.json";
  }

  // --- Overhead guard: min-of-N, off/on interleaved. -----------------
  const datalog::Program p = RandomGraph(nodes, 7);
  trace::SetEnabled(false);
  TimedEvalMs(p);  // warmup (allocator, caches)
  trace::ResetAggregates();
  double off_ms = 0;
  double on_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    trace::SetEnabled(false);
    const double off = TimedEvalMs(p);
    trace::SetEnabled(true);
    const double on = TimedEvalMs(p);
    if (rep == 0 || off < off_ms) off_ms = off;
    if (rep == 0 || on < on_ms) on_ms = on;
  }
  trace::SetEnabled(false);
  const auto eval_stages = trace::AggregatedStages();
  const double overhead_pct =
      off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0;

  std::printf(
      "trace overhead (tc_random, %d nodes, min of %d): "
      "untraced %.3f ms, traced %.3f ms, overhead %.2f%% (limit %.1f%%)\n",
      nodes, reps, off_ms, on_ms, overhead_pct, max_overhead_pct);
  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% exceeds the %.1f%% budget\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }

  // --- Traced Figure 11 query: the engine-stage breakdown. -----------
  Result<ml::Engine> engine = ml::Engine::FromSource(mls::D1Source());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  trace::Collector collector;
  std::array<trace::StageTotal, trace::kNumStages> query_stages{};
  uint64_t d1_wall_us = 0;
  {
    trace::ScopedCollector install(&collector);
    Result<ml::QueryResult> result = engine->QuerySource(
        "?- c[p(k : a -R-> v)] << opt.", /*user_level=*/"s");
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return 1;
    }
  }
  const trace::SpanNode root = collector.Finish();
  d1_wall_us = root.duration_micros;
  AccumulateStages(root, &query_stages);

  std::printf("figure 11 traced query: %llu us wall, stages:",
              static_cast<unsigned long long>(d1_wall_us));
  for (size_t i = 1; i < trace::kNumStages; ++i) {
    if (query_stages[i].count == 0) continue;
    std::printf(" %s=%lluus",
                trace::StageName(static_cast<trace::Stage>(i)),
                static_cast<unsigned long long>(query_stages[i].total_micros));
  }
  std::printf("\n");

  Json record = Json::Object();
  record.Set("bench", Json::Str("trace_overhead"));
  record.Set("nodes", Json::Int(nodes));
  record.Set("reps", Json::Int(reps));
  record.Set("untraced_ms", Json::Double(off_ms));
  record.Set("traced_ms", Json::Double(on_ms));
  record.Set("overhead_pct", Json::Double(overhead_pct));
  record.Set("max_overhead_pct", Json::Double(max_overhead_pct));
  record.Set("eval_stages", StagesJson(eval_stages));
  record.Set("d1_query_wall_us", Json::Int(static_cast<int64_t>(d1_wall_us)));
  record.Set("d1_query_stages", StagesJson(query_stages));
  std::ofstream out(json_path, std::ios::trunc);
  out << record.Serialize() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
