// Experiment E13: regenerates Figure 12 - the MultiLog inference engine
// axioms A (in our repaired, range-restricted form) and the reduction
// tau(D1) compiled at each session level - then times reduction and
// bottom-up evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "datalog/eval.h"
#include "mls/sample_data.h"
#include "multilog/parser.h"
#include "multilog/reduction.h"

namespace {

using namespace multilog;
using namespace multilog::ml;

CheckedDatabase& D1() {
  static CheckedDatabase& cdb = *new CheckedDatabase([]() {
    auto db = ParseMultiLog(mls::D1Source());
    if (!db.ok()) std::abort();
    auto checked = CheckDatabase(std::move(*db));
    if (!checked.ok()) std::abort();
    return std::move(checked).value();
  }());
  return cdb;
}

void PrintFigures() {
  std::printf(
      "Figure 12: MultiLog Inference Engine (repaired axioms A;\n"
      "the printed a6/a9 are unsafe Datalog, see DESIGN.md section 5)\n\n");
  std::printf("%s\n", EngineAxioms().ToString().c_str());

  auto rp = Reduce(D1(), "c");
  if (!rp.ok()) std::abort();
  std::printf("tau(D1) + A at session level c (generic form):\n%s\n",
              rp->display.ToString().c_str());
  std::printf(
      "Level-specialized executable form (%zu clauses; D1's r8 makes the\n"
      "generic form unstratifiable, so rel/bel split per level):\n%s\n",
      rp->program.size(), rp->program.ToString().c_str());
}

void BM_Reduce(benchmark::State& state, const char* level) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Reduce(D1(), level));
  }
}

void BM_EvaluateReduced(benchmark::State& state, const char* level) {
  auto rp = Reduce(D1(), level);
  if (!rp.ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(datalog::Evaluate(rp->program));
  }
}

BENCHMARK_CAPTURE(BM_Reduce, at_u, "u");
BENCHMARK_CAPTURE(BM_Reduce, at_s, "s");
BENCHMARK_CAPTURE(BM_EvaluateReduced, at_u, "u");
BENCHMARK_CAPTURE(BM_EvaluateReduced, at_s, "s");

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
