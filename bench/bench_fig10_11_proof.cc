// Experiments E10-E12: regenerates Figure 10 (the database D1), the
// Figure 11 proof tree for r10 (the optimistic belief query at level c),
// and a census of the Figure 9 proof rules exercised across all modes;
// then times operational proof search.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "mls/sample_data.h"
#include "multilog/engine.h"

namespace {

using namespace multilog;
using namespace multilog::ml;

Engine& TheEngine() {
  static Engine& engine = *new Engine([]() {
    auto r = Engine::FromSource(mls::D1Source());
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      std::abort();
    }
    return std::move(r).value();
  }());
  return engine;
}

void PrintFigures() {
  std::printf("Figure 10: database D1 (MultiLog source)\n%s\n",
              mls::D1Source());

  auto r = TheEngine().QuerySource("c[p(k : a -R-> v)] << opt", "c",
                                   ExecMode::kOperational);
  if (!r.ok()) std::abort();
  std::printf(
      "Figure 11: proof tree for <D1, c> |- c[p(k : a -R-> v)] << opt\n");
  for (size_t i = 0; i < r->answers.size(); ++i) {
    std::printf("answer %s\n%s", r->answers[i].ToString().c_str(),
                RenderProof(*r->proofs[i]).c_str());
    std::printf("height = %zu, size = %zu\n\n",
                ProofHeight(*r->proofs[i]), ProofSize(*r->proofs[i]));
  }

  // Rule census across modes and levels (Figure 9 coverage).
  std::set<std::string> rules;
  for (const char* goal :
       {"c[p(k : a -R-> v)] << opt", "c[p(k : a -C-> V)] << cau",
        "c[p(k : a -C-> V)] << fir", "s[p(k : a -u-> v)]", "q(X)"}) {
    for (const char* level : {"c", "s"}) {
      auto result = TheEngine().QuerySource(goal, level,
                                            ExecMode::kOperational);
      if (!result.ok()) continue;
      for (const ProofPtr& proof : result->proofs) {
        for (const std::string& rule : ProofRules(*proof)) {
          rules.insert(rule);
        }
      }
    }
  }
  std::printf("Figure 9 rule census across D1 queries:");
  for (const std::string& rule : rules) std::printf(" %s", rule.c_str());
  std::printf("\n\n");
}

void BM_OperationalQuery(benchmark::State& state, const char* goal,
                         const char* level) {
  // A fresh engine per iteration batch would re-table everything; use
  // one interpreter per iteration to measure cold proof search.
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = Engine::FromSource(mls::D1Source());
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        engine->QuerySource(goal, level, ExecMode::kOperational));
  }
}

BENCHMARK_CAPTURE(BM_OperationalQuery, fig11_opt, "c[p(k : a -R-> v)] << opt",
                  "c");
BENCHMARK_CAPTURE(BM_OperationalQuery, cau_at_s, "s[p(k : a -C-> V)] << cau",
                  "s");
BENCHMARK_CAPTURE(BM_OperationalQuery, recursive_r8, "s[p(k : a -u-> v)]",
                  "s");

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
